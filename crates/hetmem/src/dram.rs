//! DDR DRAM device model.
//!
//! Calibrated against Table I and §II-D of the paper: the evaluation
//! system's DDR4-2933 memory achieves 157 GB/s across 8 channels per
//! socket. DRAM bandwidth is essentially flat in buffer size, writes
//! run slightly below reads, random access pays a row-activation
//! penalty, and remote access is capped by the processor interconnect
//! (UPI on Ice Lake).

use crate::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology};
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Achieved aggregate sequential-read bandwidth per socket (paper
/// §II-D: "our DDR4-based evaluation system achieves 157 GB/s across
/// 8 memory channels").
pub const DDR4_2933_SOCKET_READ: Bandwidth = Bandwidth::from_gb_per_s_const(157.0);
/// Sequential-write derating relative to reads (typical DDR4 ~0.9).
pub const WRITE_DERATE: f64 = 0.90;
/// Random-access derating relative to streaming.
pub const RANDOM_DERATE: f64 = 0.30;
/// Usable cross-socket (UPI) bandwidth cap on Ice Lake (3 links).
pub const UPI_CAP: Bandwidth = Bandwidth::from_gb_per_s_const(50.0);
/// Local idle load-to-use latency.
pub const LOCAL_LATENCY: SimDuration = SimDuration::from_nanos_const(81.0);
/// Remote (cross-socket) idle latency.
pub const REMOTE_LATENCY: SimDuration = SimDuration::from_nanos_const(139.0);
/// Per-stream DMA-class sequential bandwidth before channel-level
/// parallelism saturates the socket. High enough that a single DMA
/// stream out of DRAM is never the bottleneck on the PCIe path
/// (paper Fig 3: DRAM host-to-GPU copies run at the PCIe ceiling).
pub const PER_STREAM: Bandwidth = Bandwidth::from_gb_per_s_const(40.0);

/// A DDR DRAM device (one socket's worth of channels).
///
/// # Examples
///
/// ```
/// use hetmem::dram::DramDevice;
/// use hetmem::{AccessProfile, MemoryDevice};
/// use simcore::units::ByteSize;
///
/// let dram = DramDevice::ddr4_2933_socket();
/// let one_stream = dram.bandwidth(&AccessProfile::sequential_read(ByteSize::from_gb(1.0)));
/// let many = dram.bandwidth(
///     &AccessProfile::sequential_read(ByteSize::from_gb(1.0)).with_concurrency(16),
/// );
/// assert!(many > one_stream);
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    capacity: ByteSize,
    socket_read: Bandwidth,
    per_stream: Bandwidth,
}

impl DramDevice {
    /// The paper's per-socket DRAM: 4 controllers x 2x 16 GB
    /// DDR4-2933 (128 GB, 157 GB/s).
    pub fn ddr4_2933_socket() -> Self {
        DramDevice {
            capacity: ByteSize::from_gib(128.0),
            socket_read: DDR4_2933_SOCKET_READ,
            per_stream: PER_STREAM,
        }
    }

    /// A custom DRAM device.
    pub fn new(capacity: ByteSize, socket_read: Bandwidth, per_stream: Bandwidth) -> Self {
        DramDevice {
            capacity,
            socket_read,
            per_stream,
        }
    }
}

impl MemoryDevice for DramDevice {
    fn name(&self) -> String {
        format!("DDR4-2933 ({})", self.capacity)
    }

    fn capacity(&self) -> ByteSize {
        self.capacity
    }

    fn technology(&self) -> MemoryTechnology {
        MemoryTechnology::Dram
    }

    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        let mut bw = self
            .per_stream
            .scale(f64::from(profile.concurrency))
            .min(self.socket_read);
        if !profile.kind.is_read() {
            bw = bw.scale(WRITE_DERATE);
        }
        if !profile.kind.is_sequential() {
            bw = bw.scale(RANDOM_DERATE);
        }
        if profile.remote {
            bw = bw.min(UPI_CAP);
        }
        bw
    }

    fn idle_latency(&self, _kind: AccessKind, remote: bool) -> SimDuration {
        if remote {
            REMOTE_LATENCY
        } else {
            LOCAL_LATENCY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> ByteSize {
        ByteSize::from_gb(x)
    }

    #[test]
    fn saturates_at_socket_bandwidth() {
        let d = DramDevice::ddr4_2933_socket();
        let bw = d.bandwidth(&AccessProfile::sequential_read(gb(1.0)).with_concurrency(64));
        assert!((bw.as_gb_per_s() - DDR4_2933_SOCKET_READ.as_gb_per_s()).abs() < 1e-9);
    }

    #[test]
    fn flat_in_buffer_size() {
        let d = DramDevice::ddr4_2933_socket();
        let small = d.bandwidth(&AccessProfile::sequential_read(ByteSize::from_mb(256.0)));
        let large = d.bandwidth(&AccessProfile::sequential_read(gb(32.0)));
        assert_eq!(small, large);
    }

    #[test]
    fn writes_slower_than_reads() {
        let d = DramDevice::ddr4_2933_socket();
        let r = d.bandwidth(&AccessProfile::sequential_read(gb(1.0)));
        let w = d.bandwidth(&AccessProfile::sequential_write(gb(1.0)));
        assert!(w < r);
        assert!((w.as_gb_per_s() / r.as_gb_per_s() - WRITE_DERATE).abs() < 1e-9);
    }

    #[test]
    fn random_much_slower_than_sequential() {
        let d = DramDevice::ddr4_2933_socket();
        let mut p = AccessProfile::sequential_read(gb(1.0));
        p.kind = AccessKind::RandRead;
        let rand = d.bandwidth(&p);
        let seq = d.bandwidth(&AccessProfile::sequential_read(gb(1.0)));
        assert!(rand < seq.scale(0.5));
    }

    #[test]
    fn remote_capped_by_upi() {
        let d = DramDevice::ddr4_2933_socket();
        let bw = d.bandwidth(
            &AccessProfile::sequential_read(gb(1.0))
                .with_concurrency(64)
                .remote(),
        );
        assert!((bw.as_gb_per_s() - UPI_CAP.as_gb_per_s()).abs() < 1e-9);
    }

    #[test]
    fn remote_latency_exceeds_local() {
        let d = DramDevice::ddr4_2933_socket();
        assert!(
            d.idle_latency(AccessKind::RandRead, true)
                > d.idle_latency(AccessKind::RandRead, false)
        );
    }

    #[test]
    fn reports_identity() {
        let d = DramDevice::ddr4_2933_socket();
        assert_eq!(d.technology(), MemoryTechnology::Dram);
        assert!(d.name().contains("DDR4"));
        assert_eq!(d.capacity(), ByteSize::from_gib(128.0));
    }
}
