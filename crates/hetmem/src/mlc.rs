//! An Intel Memory Latency Checker (MLC)-style harness over the
//! device models.
//!
//! The paper uses Intel MLC (§IV-A) to confirm the NUMA behaviour of
//! Optane and Memory Mode. This module reproduces the classic MLC
//! output shape — an idle-latency matrix and a bandwidth matrix over
//! (initiator node, target device) pairs — from the analytic models,
//! so characterization examples and tests can assert the same
//! qualitative structure (remote worse than local, Optane worse than
//! DRAM, writes far worse than reads on Optane).

use crate::device::{AccessKind, AccessProfile, MemoryDevice};
use crate::numa::NumaTopology;
use simcore::units::ByteSize;

/// One (initiator, target) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct MlcRow {
    /// Socket issuing the accesses.
    pub initiator: usize,
    /// Socket owning the memory.
    pub target: usize,
    /// Target device name.
    pub device: String,
    /// Idle load-to-use latency in nanoseconds.
    pub idle_latency_ns: f64,
    /// Sequential read bandwidth in GB/s.
    pub read_gbps: f64,
    /// Sequential write bandwidth in GB/s.
    pub write_gbps: f64,
}

/// A complete latency/bandwidth characterization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MlcReport {
    rows: Vec<MlcRow>,
}

impl MlcReport {
    /// All rows, ordered by (initiator, target, device).
    pub fn rows(&self) -> &[MlcRow] {
        &self.rows
    }

    /// Finds the row for a given pair and device-name substring.
    pub fn find(&self, initiator: usize, target: usize, device: &str) -> Option<&MlcRow> {
        self.rows
            .iter()
            .find(|r| r.initiator == initiator && r.target == target && r.device.contains(device))
    }

    /// Renders the report as an MLC-like table.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "init -> target  device                          lat(ns)   read(GB/s)  write(GB/s)\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>4} -> {:<6}  {:<30}  {:>7.1}   {:>10.2}  {:>11.2}\n",
                r.initiator, r.target, r.device, r.idle_latency_ns, r.read_gbps, r.write_gbps
            ));
        }
        out
    }
}

/// Runs the MLC-style sweep over `topology` with a streaming buffer of
/// `buffer` per measurement (MLC uses large buffers; 1 GB here).
pub fn run(topology: &NumaTopology, buffer: ByteSize) -> MlcReport {
    let mut rows = Vec::new();
    for initiator in topology.sockets() {
        for target in topology.sockets() {
            let remote = initiator.node() != target.node();
            let mut devices: Vec<&dyn MemoryDevice> = vec![target.dram().as_ref()];
            if let Some(optane) = target.optane() {
                devices.push(optane.as_ref());
            }
            for device in devices {
                let read = AccessProfile {
                    kind: AccessKind::SeqRead,
                    buffer,
                    concurrency: 8,
                    remote,
                    working_set: None,
                };
                let write = AccessProfile {
                    kind: AccessKind::SeqWrite,
                    ..read.clone()
                };
                rows.push(MlcRow {
                    initiator: initiator.node().0,
                    target: target.node().0,
                    device: device.name(),
                    idle_latency_ns: device.idle_latency(AccessKind::RandRead, remote).as_nanos(),
                    read_gbps: device.bandwidth(&read).as_gb_per_s(),
                    write_gbps: device.bandwidth(&write).as_gb_per_s(),
                });
            }
        }
    }
    MlcReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MlcReport {
        run(&NumaTopology::paper_system(), ByteSize::from_gb(1.0))
    }

    #[test]
    fn covers_all_pairs() {
        // 2 initiators x 2 targets x 2 devices.
        assert_eq!(report().rows().len(), 8);
    }

    #[test]
    fn remote_latency_exceeds_local() {
        let r = report();
        let local = r.find(0, 0, "DDR4").unwrap();
        let remote = r.find(1, 0, "DDR4").unwrap();
        assert!(remote.idle_latency_ns > local.idle_latency_ns);
    }

    #[test]
    fn optane_slower_than_dram_everywhere() {
        let r = report();
        for init in 0..2 {
            for tgt in 0..2 {
                let dram = r.find(init, tgt, "DDR4").unwrap();
                let optane = r.find(init, tgt, "Optane").unwrap();
                assert!(optane.read_gbps < dram.read_gbps);
                assert!(optane.idle_latency_ns > dram.idle_latency_ns);
            }
        }
    }

    #[test]
    fn optane_writes_collapse_remotely() {
        let r = report();
        let local = r.find(0, 0, "Optane").unwrap();
        let remote = r.find(1, 0, "Optane").unwrap();
        assert!(remote.write_gbps < local.write_gbps);
    }

    #[test]
    fn table_renders() {
        let t = report().to_table();
        assert!(t.contains("Optane"));
        assert!(t.lines().count() >= 9);
    }
}
