//! NUMA topology of the evaluation platform (Table I).
//!
//! A dual-socket Intel Xeon Gold 6330 (Ice Lake) system; each socket
//! carries 128 GB of DDR4-2933 DRAM and 512 GB of Optane DCPMM. With
//! Memkind/KMEM-DAX the Optane DIMMs appear as memory-only NUMA nodes,
//! giving a flat four-node hierarchy. The GPU hangs off PCIe root
//! ports local to socket 0 (paper §IV-A).

use crate::device::MemoryDevice;
use crate::dram::DramDevice;
use crate::optane::OptaneDevice;
use simcore::units::Bandwidth;
use std::sync::Arc;

/// A NUMA node identifier. In the paper's numbering, nodes 0 and 1
/// are the two CPU/DRAM nodes; Optane memory-only nodes mirror them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// One socket's memory complement.
#[derive(Debug, Clone)]
pub struct Socket {
    node: NodeId,
    dram: Arc<DramDevice>,
    optane: Option<Arc<OptaneDevice>>,
}

impl Socket {
    /// The socket's CPU/DRAM node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The socket's DRAM device.
    pub fn dram(&self) -> &Arc<DramDevice> {
        &self.dram
    }

    /// The socket's Optane device, if populated.
    pub fn optane(&self) -> Option<&Arc<OptaneDevice>> {
        self.optane.as_ref()
    }
}

/// The machine topology: sockets, interconnect, and GPU attachment.
///
/// # Examples
///
/// ```
/// use hetmem::numa::NumaTopology;
///
/// let topo = NumaTopology::paper_system();
/// assert_eq!(topo.sockets().len(), 2);
/// assert!(topo.is_remote_from_gpu(topo.sockets()[1].node()));
/// assert!(!topo.is_remote_from_gpu(topo.sockets()[0].node()));
/// ```
#[derive(Debug, Clone)]
pub struct NumaTopology {
    sockets: Vec<Socket>,
    gpu_node: NodeId,
    upi: Bandwidth,
}

impl NumaTopology {
    /// The paper's dual-socket Ice Lake + Optane platform, GPU on
    /// socket 0.
    pub fn paper_system() -> Self {
        let sockets = (0..2)
            .map(|i| Socket {
                node: NodeId(i),
                dram: Arc::new(DramDevice::ddr4_2933_socket()),
                optane: Some(Arc::new(OptaneDevice::dcpmm_200_socket())),
            })
            .collect();
        NumaTopology {
            sockets,
            gpu_node: NodeId(0),
            upi: crate::dram::UPI_CAP,
        }
    }

    /// A single-socket DRAM-only topology (for unit scenarios).
    pub fn single_socket_dram() -> Self {
        NumaTopology {
            sockets: vec![Socket {
                node: NodeId(0),
                dram: Arc::new(DramDevice::ddr4_2933_socket()),
                optane: None,
            }],
            gpu_node: NodeId(0),
            upi: crate::dram::UPI_CAP,
        }
    }

    /// All sockets.
    pub fn sockets(&self) -> &[Socket] {
        &self.sockets
    }

    /// The node whose PCIe root ports host the GPU.
    pub fn gpu_node(&self) -> NodeId {
        self.gpu_node
    }

    /// Usable cross-socket interconnect bandwidth.
    pub fn upi_bandwidth(&self) -> Bandwidth {
        self.upi
    }

    /// Whether memory on `node` is on a different socket than the GPU.
    pub fn is_remote_from_gpu(&self, node: NodeId) -> bool {
        node != self.gpu_node
    }

    /// Total DRAM capacity across sockets.
    pub fn total_dram(&self) -> simcore::units::ByteSize {
        self.sockets.iter().map(|s| s.dram.capacity()).sum()
    }

    /// Total Optane capacity across sockets.
    pub fn total_optane(&self) -> simcore::units::ByteSize {
        self.sockets
            .iter()
            .filter_map(|s| s.optane.as_ref().map(MemoryDevice::capacity))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::ByteSize;

    #[test]
    fn paper_system_matches_table_i() {
        let topo = NumaTopology::paper_system();
        assert_eq!(topo.sockets().len(), 2);
        // 256 GB DRAM and 1 TB Optane across the system.
        assert_eq!(topo.total_dram(), ByteSize::from_gib(256.0));
        assert_eq!(topo.total_optane(), ByteSize::from_gib(1024.0));
    }

    #[test]
    fn gpu_lives_on_node0() {
        let topo = NumaTopology::paper_system();
        assert_eq!(topo.gpu_node(), NodeId(0));
        assert!(topo.is_remote_from_gpu(NodeId(1)));
    }

    #[test]
    fn single_socket_has_no_optane() {
        let topo = NumaTopology::single_socket_dram();
        assert_eq!(topo.total_optane(), ByteSize::ZERO);
        assert!(topo.sockets()[0].optane().is_none());
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(1).to_string(), "node1");
    }
}
