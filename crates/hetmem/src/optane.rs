//! Intel Optane DCPMM device model.
//!
//! Calibrated against the paper's own measurements (Fig 3) and the
//! Optane characterization studies it cites (Izraelevitz et al.,
//! Yang et al., Peng et al.):
//!
//! * Single-stream sequential reads feed a GPU DMA engine at
//!   19.91 GB/s for footprints up to 4 GB, degrading to 15.52 GB/s at
//!   32 GB (Fig 3a) — attributed to wear-leveling-induced scatter and
//!   address-indirection-table (AIT) buffer misses.
//! * Sequential writes are drastically slower: 3.26 GB/s peak at a
//!   1 GB footprint (Fig 3b), with a ramp below and a mild decline
//!   above, and a *non-linear* relationship to concurrency (write
//!   bandwidth peaks at ~4 streams and then degrades).
//! * Remote (cross-socket) CPU writes degrade further (Peng et al.).

use crate::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology};
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Single-stream sequential-read bandwidth for footprints within the
/// AIT-friendly regime (paper Fig 3a: NVDRAM host-to-GPU plateau).
pub const SEQ_READ_BASE: Bandwidth = Bandwidth::from_gb_per_s_const(19.91);
/// Sequential-read bandwidth at a 32 GB footprint (paper Fig 3a).
pub const SEQ_READ_32GB: Bandwidth = Bandwidth::from_gb_per_s_const(15.52);
/// Footprint up to which reads stay at the base rate (paper Fig 3a).
pub const READ_KNEE: ByteSize = ByteSize::from_bytes(4_000_000_000);
/// Footprint of the measured degraded point.
pub const READ_DEGRADED_POINT: ByteSize = ByteSize::from_bytes(32_000_000_000);
/// Peak single-stream sequential-write bandwidth (paper Fig 3b:
/// "maxing out at 3.26 GB/s with a buffer size of 1 GB").
pub const SEQ_WRITE_PEAK: Bandwidth = Bandwidth::from_gb_per_s_const(3.26);
/// Write bandwidth at the smallest measured footprint (256 MB),
/// before write-combining buffers are warm.
pub const SEQ_WRITE_256MB: Bandwidth = Bandwidth::from_gb_per_s_const(2.95);
/// Write bandwidth at large (32 GB) footprints.
pub const SEQ_WRITE_32GB: Bandwidth = Bandwidth::from_gb_per_s_const(3.05);
/// Aggregate socket sequential-read ceiling (4x Optane 200 DIMMs).
pub const SOCKET_READ_CAP: Bandwidth = Bandwidth::from_gb_per_s_const(29.8);
/// Aggregate socket write ceiling at the optimal concurrency.
pub const SOCKET_WRITE_CAP: Bandwidth = Bandwidth::from_gb_per_s_const(9.2);
/// Concurrency at which write bandwidth peaks (Yang et al. observe a
/// non-linear concurrency/write-bandwidth relationship).
pub const WRITE_PEAK_CONCURRENCY: u32 = 4;
/// Random-access derating relative to streaming.
pub const RANDOM_DERATE: f64 = 0.25;
/// Remote CPU write derating (Peng et al.: Optane write performance
/// worsens when accessed remotely).
pub const REMOTE_WRITE_DERATE: f64 = 0.60;
/// Remote read derating (mild; UPI has headroom at these rates).
pub const REMOTE_READ_DERATE: f64 = 0.95;
/// Local idle read latency (3D-XPoint media, ~3-4x DRAM).
pub const LOCAL_READ_LATENCY: SimDuration = SimDuration::from_nanos_const(305.0);
/// Remote idle read latency.
pub const REMOTE_READ_LATENCY: SimDuration = SimDuration::from_nanos_const(391.0);

/// An Intel Optane DCPMM device (one socket's worth of DIMMs, exposed
/// as a memory-only NUMA node via Memkind/KMEM-DAX).
///
/// # Examples
///
/// Reads degrade as the footprint grows past the AIT-friendly knee:
///
/// ```
/// use hetmem::optane::OptaneDevice;
/// use hetmem::{AccessProfile, MemoryDevice};
/// use simcore::units::ByteSize;
///
/// let optane = OptaneDevice::dcpmm_200_socket();
/// let small = optane.bandwidth(&AccessProfile::sequential_read(ByteSize::from_gb(1.0)));
/// let large = optane.bandwidth(&AccessProfile::sequential_read(ByteSize::from_gb(32.0)));
/// assert!(large < small);
/// ```
#[derive(Debug, Clone)]
pub struct OptaneDevice {
    capacity: ByteSize,
}

impl OptaneDevice {
    /// The paper's per-socket Optane: 4x 128 GB DCPMM 200-series.
    pub fn dcpmm_200_socket() -> Self {
        OptaneDevice {
            capacity: ByteSize::from_gib(512.0),
        }
    }

    /// A custom-capacity Optane device with the same rate curves.
    pub fn with_capacity(capacity: ByteSize) -> Self {
        OptaneDevice { capacity }
    }

    /// AIT-thrash degradation for a single re-copied buffer of the
    /// given size (the `nvbandwidth` pattern of Fig 3a): 1.0 up to
    /// the knee, log-interpolated to the measured 32 GB point,
    /// clamped beyond.
    pub fn ait_degradation(buffer: ByteSize) -> f64 {
        let floor = SEQ_READ_32GB.as_gb_per_s() / SEQ_READ_BASE.as_gb_per_s();
        if buffer <= READ_KNEE {
            return 1.0;
        }
        let x = (buffer.as_f64() / READ_KNEE.as_f64()).ln();
        let span = (READ_DEGRADED_POINT.as_f64() / READ_KNEE.as_f64()).ln();
        let t = (x / span).min(1.0);
        1.0 + t * (floor - 1.0)
    }

    /// Degradation for *cyclic* streaming over a large resident
    /// working set in small sequential chunks (the FlexGen weight-load
    /// pattern). Milder than [`OptaneDevice::ait_degradation`] because
    /// each region is touched once per cycle rather than hammered in a
    /// tight loop. Calibrated to two paper observations: OPT-30B
    /// (~60 GB resident) sees ~33% higher TTFT/TBT on NVDRAM than DRAM
    /// (Fig 4, i.e. ~18.7 GB/s effective), and an ideal all-DRAM
    /// system improves OPT-175B (~300 GB resident) weight transfers by
    /// ~33% over NVDIMM (Fig 5, ~16.7 GB/s effective).
    pub fn cyclic_degradation(working_set: ByteSize) -> f64 {
        const KNEE: ByteSize = ByteSize::from_bytes(22_400_000_000);
        const SLOPE: f64 = 0.0622;
        const FLOOR: f64 = 0.75;
        if working_set <= KNEE {
            return 1.0;
        }
        (1.0 - SLOPE * (working_set / KNEE).ln()).max(FLOOR)
    }

    /// Combined read degradation: AIT thrash on the transfer buffer
    /// itself, plus the cyclic-footprint factor when a larger resident
    /// working set is declared.
    pub fn read_degradation(buffer: ByteSize, working_set: Option<ByteSize>) -> f64 {
        let ait = Self::ait_degradation(buffer);
        match working_set {
            Some(ws) if ws > buffer => ait * Self::cyclic_degradation(ws),
            _ => ait,
        }
    }

    /// Single-stream sequential-write bandwidth for a footprint:
    /// ramps 256 MB -> 1 GB, mild decline beyond (paper Fig 3b).
    pub fn write_curve(footprint: ByteSize) -> f64 {
        let f = footprint.as_f64();
        let peak_at = ByteSize::from_gb(1.0).as_f64();
        if f <= peak_at {
            // Linear ramp from the 256 MB point to the 1 GB peak.
            let lo = ByteSize::from_mb(256.0).as_f64();
            let t = ((f - lo) / (peak_at - lo)).clamp(0.0, 1.0);
            SEQ_WRITE_256MB.as_gb_per_s()
                + t * (SEQ_WRITE_PEAK.as_gb_per_s() - SEQ_WRITE_256MB.as_gb_per_s())
        } else {
            // Log-space decline toward the 32 GB point.
            let span = (32e9_f64 / peak_at).ln();
            let t = ((f / peak_at).ln() / span).min(1.0);
            SEQ_WRITE_PEAK.as_gb_per_s()
                + t * (SEQ_WRITE_32GB.as_gb_per_s() - SEQ_WRITE_PEAK.as_gb_per_s())
        }
    }

    /// Non-linear write concurrency scaling: sub-linear gains up to
    /// the peak concurrency, then degradation from internal buffer
    /// contention (Yang et al.).
    pub fn write_concurrency_factor(concurrency: u32) -> f64 {
        let c = f64::from(concurrency.max(1));
        let peak = f64::from(WRITE_PEAK_CONCURRENCY);
        if c <= peak {
            c.powf(0.75)
        } else {
            let at_peak = peak.powf(0.75);
            // 5% loss per stream beyond the peak, floored at 50% of peak.
            (at_peak * (1.0 - 0.05 * (c - peak))).max(at_peak * 0.5)
        }
    }
}

/// Rated lifetime write volume of a 128 GB DCPMM 200 module
/// (Intel datasheet: ~292 PB written over 5 years).
pub const MODULE_ENDURANCE_PBW: f64 = 292.0;
/// Capacity of one module in the rated figure.
pub const MODULE_CAPACITY: ByteSize = ByteSize::from_bytes(128_000_000_000);

impl OptaneDevice {
    /// Years until the rated endurance is consumed at a sustained
    /// write rate of `write_rate` spread across this device's
    /// modules (paper §II-C: "Being PCM-based also limits the life of
    /// each memory module in terms of its write endurance").
    ///
    /// # Examples
    ///
    /// ```
    /// use hetmem::optane::OptaneDevice;
    /// use simcore::units::Bandwidth;
    ///
    /// let d = OptaneDevice::dcpmm_200_socket();
    /// // Writing 1 GB/s into 4 modules: centuries of headroom.
    /// assert!(d.endurance_years(Bandwidth::from_gb_per_s(1.0)) > 30.0);
    /// ```
    pub fn endurance_years(&self, write_rate: Bandwidth) -> f64 {
        // Bandwidth is finite and positive by construction, so idle
        // media (infinite life) is unrepresentable here by design.
        let bytes_per_s = write_rate.as_bytes_per_s();
        let modules = self.capacity() / MODULE_CAPACITY;
        let budget_bytes = modules * MODULE_ENDURANCE_PBW * 1e15;
        budget_bytes / bytes_per_s / (365.25 * 24.0 * 3600.0)
    }
}

impl MemoryDevice for OptaneDevice {
    fn name(&self) -> String {
        format!("Optane DCPMM 200 ({})", self.capacity)
    }

    fn capacity(&self) -> ByteSize {
        self.capacity
    }

    fn technology(&self) -> MemoryTechnology {
        MemoryTechnology::Pcm
    }

    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        let footprint = profile.footprint();
        let mut gbps = if profile.kind.is_read() {
            let single = SEQ_READ_BASE.as_gb_per_s()
                * Self::read_degradation(profile.buffer, profile.working_set);
            (single * f64::from(profile.concurrency).powf(0.85)).min(SOCKET_READ_CAP.as_gb_per_s())
        } else {
            let single = Self::write_curve(footprint);
            (single * Self::write_concurrency_factor(profile.concurrency))
                .min(SOCKET_WRITE_CAP.as_gb_per_s())
        };
        if !profile.kind.is_sequential() {
            gbps *= RANDOM_DERATE;
        }
        if profile.remote {
            gbps *= if profile.kind.is_read() {
                REMOTE_READ_DERATE
            } else {
                REMOTE_WRITE_DERATE
            };
        }
        Bandwidth::from_gb_per_s(gbps)
    }

    fn idle_latency(&self, _kind: AccessKind, remote: bool) -> SimDuration {
        if remote {
            REMOTE_READ_LATENCY
        } else {
            LOCAL_READ_LATENCY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> ByteSize {
        ByteSize::from_gb(x)
    }

    fn gbs(x: f64) -> Bandwidth {
        Bandwidth::from_gb_per_s(x)
    }

    #[test]
    fn read_matches_paper_calibration_points() {
        let d = OptaneDevice::dcpmm_200_socket();
        let at_4gb = d.bandwidth(&AccessProfile::sequential_read(gb(4.0)));
        assert!((at_4gb.as_gb_per_s() - SEQ_READ_BASE.as_gb_per_s()).abs() < 0.01);
        let at_32gb = d.bandwidth(&AccessProfile::sequential_read(gb(32.0)));
        assert!((at_32gb.as_gb_per_s() - SEQ_READ_32GB.as_gb_per_s()).abs() < 0.01);
    }

    #[test]
    fn read_degradation_is_monotone_nonincreasing() {
        let mut last = f64::INFINITY;
        for gbs in [0.25, 1.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let f = OptaneDevice::read_degradation(gb(gbs), None);
            assert!(f <= last + 1e-12, "degradation increased at {gbs} GB");
            assert!(f > 0.0 && f <= 1.0);
            last = f;
        }
    }

    #[test]
    fn cyclic_degradation_matches_calibration_targets() {
        // OPT-30B resident set (~60 GB): ~18.7 GB/s effective.
        let at60 = SEQ_READ_BASE.as_gb_per_s() * OptaneDevice::cyclic_degradation(gb(60.0));
        assert!((at60 - 18.7).abs() < 0.3, "60 GB: {at60}");
        // OPT-175B resident set (~300 GB): ~16.7 GB/s effective.
        let at300 = SEQ_READ_BASE.as_gb_per_s() * OptaneDevice::cyclic_degradation(gb(300.0));
        assert!((at300 - 16.7).abs() < 0.3, "300 GB: {at300}");
        // Small sets are undegraded; huge sets are floored.
        assert_eq!(OptaneDevice::cyclic_degradation(gb(8.0)), 1.0);
        assert!(OptaneDevice::cyclic_degradation(gb(100_000.0)) >= 0.74);
    }

    #[test]
    fn cyclic_factor_milder_than_ait_at_same_size() {
        // A 32 GB cyclic footprint hurts less than a 32 GB hammered
        // buffer.
        assert!(
            OptaneDevice::cyclic_degradation(gb(32.0)) > OptaneDevice::ait_degradation(gb(32.0))
        );
    }

    #[test]
    fn write_peaks_at_1gb_footprint() {
        let d = OptaneDevice::dcpmm_200_socket();
        let peak = d.bandwidth(&AccessProfile::sequential_write(gb(1.0)));
        assert!((peak.as_gb_per_s() - SEQ_WRITE_PEAK.as_gb_per_s()).abs() < 0.01);
        let small = d.bandwidth(&AccessProfile::sequential_write(ByteSize::from_mb(256.0)));
        let large = d.bandwidth(&AccessProfile::sequential_write(gb(32.0)));
        assert!(small < peak);
        assert!(large < peak);
    }

    #[test]
    fn writes_much_slower_than_reads() {
        // Paper: GPU-to-host bandwidth is 88% lower with NVDRAM.
        let d = OptaneDevice::dcpmm_200_socket();
        let r = d.bandwidth(&AccessProfile::sequential_read(gb(1.0)));
        let w = d.bandwidth(&AccessProfile::sequential_write(gb(1.0)));
        assert!(w.as_gb_per_s() / r.as_gb_per_s() < 0.2);
    }

    #[test]
    fn write_concurrency_is_nonlinear() {
        let one = OptaneDevice::write_concurrency_factor(1);
        let four = OptaneDevice::write_concurrency_factor(4);
        let sixteen = OptaneDevice::write_concurrency_factor(16);
        assert!(four > one);
        assert!(four < 4.0, "sub-linear scaling expected");
        assert!(sixteen < four, "contention collapse expected");
    }

    #[test]
    fn remote_write_pays_heavier_penalty_than_read() {
        let d = OptaneDevice::dcpmm_200_socket();
        let r_ratio = d
            .bandwidth(&AccessProfile::sequential_read(gb(1.0)).remote())
            .as_gb_per_s()
            / d.bandwidth(&AccessProfile::sequential_read(gb(1.0)))
                .as_gb_per_s();
        let w_ratio = d
            .bandwidth(&AccessProfile::sequential_write(gb(1.0)).remote())
            .as_gb_per_s()
            / d.bandwidth(&AccessProfile::sequential_write(gb(1.0)))
                .as_gb_per_s();
        assert!(w_ratio < r_ratio);
    }

    #[test]
    fn latency_is_several_times_dram() {
        let d = OptaneDevice::dcpmm_200_socket();
        let lat = d.idle_latency(AccessKind::RandRead, false);
        assert!(lat.as_secs() > 250e-9);
    }

    #[test]
    fn working_set_overrides_buffer_for_degradation() {
        let d = OptaneDevice::dcpmm_200_socket();
        // A small per-transfer buffer cycling over a huge footprint
        // still sees AIT thrash.
        let p =
            AccessProfile::sequential_read(ByteSize::from_mb(300.0)).with_working_set(gb(300.0));
        let degraded = d.bandwidth(&p);
        let fresh = d.bandwidth(&AccessProfile::sequential_read(ByteSize::from_mb(300.0)));
        assert!(degraded < fresh);
    }

    #[test]
    fn reports_identity() {
        let d = OptaneDevice::dcpmm_200_socket();
        assert_eq!(d.technology(), MemoryTechnology::Pcm);
        assert_eq!(d.capacity(), ByteSize::from_gib(512.0));
        assert!(d.name().contains("Optane"));
    }

    #[test]
    fn endurance_scales_with_rate_and_capacity() {
        let socket = OptaneDevice::dcpmm_200_socket();
        let small = OptaneDevice::with_capacity(ByteSize::from_gib(128.0));
        // Doubling the write rate halves life.
        let y1 = socket.endurance_years(gbs(1.0));
        let y2 = socket.endurance_years(gbs(2.0));
        assert!((y1 / y2 - 2.0).abs() < 1e-9);
        // More modules spread the wear.
        assert!(socket.endurance_years(gbs(1.0)) > small.endurance_years(gbs(1.0)) * 3.0);
        // Sustained full-socket write rate (~9 GB/s) still gives years.
        assert!(socket.endurance_years(gbs(9.2)) > 3.0);
    }
}
