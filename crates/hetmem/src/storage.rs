//! Storage-interfaced tiers: Optane as a block device ("SSD") and
//! Optane through ext4-DAX ("FSDAX").
//!
//! Table II's two storage configurations both put the OPT-175B weight
//! spill on Optane media, but differ in the software path:
//!
//! * **SSD** — Optane behind a conventional file system and the Linux
//!   page cache: every read pays block-layer and page-cache copy
//!   costs.
//! * **FSDAX** — ext4 with DAX (paper §II-C): the page cache is
//!   bypassed, raising effective bandwidth by ~1.5x, which is exactly
//!   the paper's measured 33.4% TTFT/TBT reduction from SSD to FSDAX
//!   (a 1/(1-0.334) = 1.5x speedup on the transfer-bound path).
//!
//! Both tiers require a DRAM bounce buffer on the GPU DMA path
//! ([`Staging::BounceBuffer`]): "FSDAX ... requiring the use of a
//! bounce buffer in DRAM when copying weights from Optane to GPU"
//! (§IV-B). The same holds for the page-cache path.

use crate::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology, Staging};
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Effective sequential-read bandwidth of the block-device path
/// (file system + page cache over Optane media).
pub const SSD_READ_BW: Bandwidth = Bandwidth::from_gb_per_s_const(2.10);
/// Effective sequential-write bandwidth of the block-device path.
pub const SSD_WRITE_BW: Bandwidth = Bandwidth::from_gb_per_s_const(1.10);
/// FSDAX speedup over the page-cache path (calibrated so FSDAX
/// improves SSD latency metrics by the paper's ~33.4%).
pub const FSDAX_SPEEDUP: f64 = 1.50;
/// Random-access derating for storage paths.
pub const RANDOM_DERATE: f64 = 0.40;
/// Software-stack access latency for the block path.
pub const SSD_LATENCY: SimDuration = SimDuration::from_micros_const(12.0);
/// Software-stack access latency for the DAX path.
pub const FSDAX_LATENCY: SimDuration = SimDuration::from_micros_const(2.0);

/// Which software interface fronts the storage media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageInterface {
    /// Conventional file system + page cache.
    BlockFs,
    /// ext4-DAX direct access (no page cache).
    FsDax,
}

/// Optane media exposed through a storage interface.
///
/// # Examples
///
/// ```
/// use hetmem::storage::{StorageDevice, StorageInterface};
/// use hetmem::{AccessProfile, MemoryDevice, Staging};
/// use simcore::units::ByteSize;
///
/// let ssd = StorageDevice::optane_block();
/// let dax = StorageDevice::optane_fsdax();
/// let p = AccessProfile::sequential_read(ByteSize::from_gb(1.0));
/// assert!(dax.bandwidth(&p) > ssd.bandwidth(&p));
/// assert_eq!(ssd.staging(), Staging::BounceBuffer);
/// # let _ = StorageInterface::BlockFs;
/// ```
#[derive(Debug, Clone)]
pub struct StorageDevice {
    interface: StorageInterface,
    capacity: ByteSize,
}

impl StorageDevice {
    /// Optane behind a conventional file system (Table II "SSD").
    pub fn optane_block() -> Self {
        StorageDevice {
            interface: StorageInterface::BlockFs,
            capacity: ByteSize::from_gib(512.0),
        }
    }

    /// Optane behind ext4-DAX (Table II "FSDAX").
    pub fn optane_fsdax() -> Self {
        StorageDevice {
            interface: StorageInterface::FsDax,
            capacity: ByteSize::from_gib(512.0),
        }
    }

    /// The software interface in use.
    pub fn interface(&self) -> StorageInterface {
        self.interface
    }

    fn speedup(&self) -> f64 {
        match self.interface {
            StorageInterface::BlockFs => 1.0,
            StorageInterface::FsDax => FSDAX_SPEEDUP,
        }
    }
}

impl MemoryDevice for StorageDevice {
    fn name(&self) -> String {
        match self.interface {
            StorageInterface::BlockFs => format!("Optane block storage ({})", self.capacity),
            StorageInterface::FsDax => format!("Optane ext4-DAX ({})", self.capacity),
        }
    }

    fn capacity(&self) -> ByteSize {
        self.capacity
    }

    fn technology(&self) -> MemoryTechnology {
        MemoryTechnology::BlockStorage
    }

    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        let base = if profile.kind.is_read() {
            SSD_READ_BW.as_gb_per_s()
        } else {
            SSD_WRITE_BW.as_gb_per_s()
        };
        let mut gbps = base * self.speedup();
        if !profile.kind.is_sequential() {
            gbps *= RANDOM_DERATE;
        }
        // Concurrency helps the block path modestly (queue depth),
        // with quick saturation.
        let c = f64::from(profile.concurrency.min(4));
        gbps *= c.powf(0.3);
        Bandwidth::from_gb_per_s(gbps)
    }

    fn idle_latency(&self, _kind: AccessKind, _remote: bool) -> SimDuration {
        match self.interface {
            StorageInterface::BlockFs => SSD_LATENCY,
            StorageInterface::FsDax => FSDAX_LATENCY,
        }
    }

    fn staging(&self) -> Staging {
        Staging::BounceBuffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> ByteSize {
        ByteSize::from_gb(x)
    }

    #[test]
    fn fsdax_is_1_5x_block() {
        let ssd = StorageDevice::optane_block();
        let dax = StorageDevice::optane_fsdax();
        let p = AccessProfile::sequential_read(gb(1.0));
        let ratio = dax.bandwidth(&p).as_gb_per_s() / ssd.bandwidth(&p).as_gb_per_s();
        assert!((ratio - FSDAX_SPEEDUP).abs() < 1e-9);
    }

    #[test]
    fn both_require_bounce_buffers() {
        assert_eq!(
            StorageDevice::optane_block().staging(),
            Staging::BounceBuffer
        );
        assert_eq!(
            StorageDevice::optane_fsdax().staging(),
            Staging::BounceBuffer
        );
    }

    #[test]
    fn dax_latency_beats_block() {
        let ssd = StorageDevice::optane_block();
        let dax = StorageDevice::optane_fsdax();
        assert!(
            dax.idle_latency(AccessKind::RandRead, false)
                < ssd.idle_latency(AccessKind::RandRead, false)
        );
    }

    #[test]
    fn writes_slower_than_reads() {
        let ssd = StorageDevice::optane_block();
        assert!(
            ssd.bandwidth(&AccessProfile::sequential_write(gb(1.0)))
                < ssd.bandwidth(&AccessProfile::sequential_read(gb(1.0)))
        );
    }

    #[test]
    fn concurrency_saturates() {
        let ssd = StorageDevice::optane_block();
        let p4 = AccessProfile::sequential_read(gb(1.0)).with_concurrency(4);
        let p16 = AccessProfile::sequential_read(gb(1.0)).with_concurrency(16);
        assert_eq!(ssd.bandwidth(&p4), ssd.bandwidth(&p16));
    }

    #[test]
    fn reports_identity() {
        let ssd = StorageDevice::optane_block();
        assert_eq!(ssd.technology(), MemoryTechnology::BlockStorage);
        assert_eq!(ssd.interface(), StorageInterface::BlockFs);
        assert!(StorageDevice::optane_fsdax().name().contains("DAX"));
    }
}
