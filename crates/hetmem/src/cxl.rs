//! CXL Type-3 memory expander models.
//!
//! The paper projects its placement policies onto two CXL devices
//! borrowed from prior measurement studies (Table III):
//!
//! | Name     | Memory technology | Bandwidth |
//! |----------|-------------------|-----------|
//! | CXL-FPGA | DDR4-3200 x1      | 5.12 GB/s |
//! | CXL-ASIC | DDR5-4800 x1      | 28 GB/s   |
//!
//! CXL-FPGA is Sun et al.'s FPGA-controller device ("CXL-C"); CXL-ASIC
//! is Wang et al.'s commercial ASIC device ("System A"). CXL adds at
//! least ~70 ns to round-trip latency (§II-D). [`CxlDevice::custom`]
//! supports the continuous bandwidth spectrum used for sensitivity
//! sweeps.

use crate::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology};
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Effective bandwidth of the FPGA-controller device (Table III).
pub const CXL_FPGA_BW: Bandwidth = Bandwidth::from_gb_per_s_const(5.12);
/// Effective bandwidth of the ASIC-controller device (Table III).
pub const CXL_ASIC_BW: Bandwidth = Bandwidth::from_gb_per_s_const(28.0);
/// Minimum added round-trip latency of the CXL hop (§II-D).
pub const CXL_ADDED_LATENCY: SimDuration = SimDuration::from_nanos_const(70.0);
/// Base latency of the expander-side memory.
pub const MEDIA_LATENCY: SimDuration = SimDuration::from_nanos_const(85.0);
/// Extra cross-socket (UPI) latency when the CXL port hangs off the
/// other socket.
pub const CXL_REMOTE_HOP: SimDuration = SimDuration::from_nanos_const(58.0);
/// Write derating relative to reads across the CXL link.
pub const WRITE_DERATE: f64 = 0.85;
/// Random-access derating at the expander.
pub const RANDOM_DERATE: f64 = 0.35;

/// The controller class of a CXL expander.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CxlController {
    /// FPGA-based controller (Sun et al., "CXL-C").
    Fpga,
    /// Commercial ASIC controller (Wang et al., "System A").
    Asic,
    /// A hypothetical controller with custom effective bandwidth.
    Custom,
}

/// A CXL Type-3 memory expander.
///
/// # Examples
///
/// ```
/// use hetmem::cxl::CxlDevice;
/// use hetmem::{AccessProfile, MemoryDevice};
/// use simcore::units::ByteSize;
///
/// let fpga = CxlDevice::fpga_ddr4();
/// let asic = CxlDevice::asic_ddr5();
/// let p = AccessProfile::sequential_read(ByteSize::from_gb(1.0));
/// assert!(asic.bandwidth(&p) > fpga.bandwidth(&p));
/// ```
#[derive(Debug, Clone)]
pub struct CxlDevice {
    controller: CxlController,
    media: String,
    capacity: ByteSize,
    read_bw: Bandwidth,
}

impl CxlDevice {
    /// Table III CXL-FPGA: FPGA controller, single-channel DDR4-3200.
    pub fn fpga_ddr4() -> Self {
        CxlDevice {
            controller: CxlController::Fpga,
            media: "DDR4-3200 x1".to_owned(),
            capacity: ByteSize::from_gib(512.0),
            read_bw: CXL_FPGA_BW,
        }
    }

    /// Table III CXL-ASIC: commercial ASIC, single-channel DDR5-4800.
    pub fn asic_ddr5() -> Self {
        CxlDevice {
            controller: CxlController::Asic,
            media: "DDR5-4800 x1".to_owned(),
            capacity: ByteSize::from_gib(512.0),
            read_bw: CXL_ASIC_BW,
        }
    }

    /// A hypothetical expander with the given effective read
    /// bandwidth, for sensitivity sweeps over the CXL design space.
    pub fn custom(read_bw: Bandwidth, capacity: ByteSize) -> Self {
        CxlDevice {
            controller: CxlController::Custom,
            media: format!("custom ({read_bw})"),
            capacity,
            read_bw,
        }
    }

    /// The controller class.
    pub fn controller(&self) -> CxlController {
        self.controller
    }

    /// Description of the expander-side memory.
    pub fn media(&self) -> &str {
        &self.media
    }
}

impl MemoryDevice for CxlDevice {
    fn name(&self) -> String {
        match self.controller {
            CxlController::Fpga => format!("CXL-FPGA [{}]", self.media),
            CxlController::Asic => format!("CXL-ASIC [{}]", self.media),
            CxlController::Custom => format!("CXL-custom [{}]", self.media),
        }
    }

    fn capacity(&self) -> ByteSize {
        self.capacity
    }

    fn technology(&self) -> MemoryTechnology {
        MemoryTechnology::CxlExpander
    }

    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        let mut bw = self.read_bw;
        if !profile.kind.is_read() {
            bw = bw.scale(WRITE_DERATE);
        }
        if !profile.kind.is_sequential() {
            bw = bw.scale(RANDOM_DERATE);
        }
        // The CXL link serializes streams; concurrency neither helps
        // (the single channel is already saturated) nor collapses.
        bw
    }

    fn idle_latency(&self, _kind: AccessKind, remote: bool) -> SimDuration {
        let upi = if remote {
            CXL_REMOTE_HOP
        } else {
            SimDuration::ZERO
        };
        MEDIA_LATENCY + CXL_ADDED_LATENCY + upi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> AccessProfile {
        AccessProfile::sequential_read(ByteSize::from_gb(1.0))
    }

    #[test]
    fn table_iii_bandwidths() {
        assert!(
            (CxlDevice::fpga_ddr4().bandwidth(&p()).as_gb_per_s() - CXL_FPGA_BW.as_gb_per_s())
                .abs()
                < 1e-9
        );
        assert!(
            (CxlDevice::asic_ddr5().bandwidth(&p()).as_gb_per_s() - CXL_ASIC_BW.as_gb_per_s())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn latency_includes_cxl_hop() {
        let d = CxlDevice::asic_ddr5();
        let lat = d.idle_latency(AccessKind::RandRead, false);
        assert!(lat >= CXL_ADDED_LATENCY + MEDIA_LATENCY);
        assert!(d.idle_latency(AccessKind::RandRead, true) > lat);
    }

    #[test]
    fn custom_device_spans_the_spectrum() {
        let lo = CxlDevice::custom(Bandwidth::from_gb_per_s(2.0), ByteSize::from_gib(256.0));
        let hi = CxlDevice::custom(Bandwidth::from_gb_per_s(60.0), ByteSize::from_gib(256.0));
        assert!(hi.bandwidth(&p()) > lo.bandwidth(&p()));
        assert_eq!(lo.controller(), CxlController::Custom);
    }

    #[test]
    fn writes_and_random_derated() {
        let d = CxlDevice::asic_ddr5();
        let w = d.bandwidth(&AccessProfile::sequential_write(ByteSize::from_gb(1.0)));
        assert!(w < d.bandwidth(&p()));
        let mut rp = p();
        rp.kind = AccessKind::RandRead;
        assert!(d.bandwidth(&rp) < d.bandwidth(&p()));
    }

    #[test]
    fn reports_identity() {
        let d = CxlDevice::fpga_ddr4();
        assert_eq!(d.technology(), MemoryTechnology::CxlExpander);
        assert!(d.name().contains("FPGA"));
        assert!(d.media().contains("DDR4"));
    }
}
