//! A memkind-like tiered allocator with capacity accounting.
//!
//! The serving engine uses this to place weight tensors, KV cache, and
//! bounce buffers on named tiers (GPU HBM, DRAM, Optane, storage) and
//! to fail loudly when a placement exceeds a tier's capacity — the
//! situation that forces OPT-175B off DRAM and onto Optane or storage
//! in the first place.

use simcore::units::ByteSize;
use std::fmt;

/// Identifier of a tier within one [`TieredAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TierId(usize);

/// Identifier of a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationId(u64);

/// Error returned when an allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// The tier that was asked.
    pub tier: TierId,
    /// Bytes requested.
    pub requested: ByteSize,
    /// Bytes that were still free.
    pub available: ByteSize,
    /// Tier name for diagnostics.
    pub tier_name: String,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tier '{}' cannot satisfy {} (only {} free)",
            self.tier_name, self.requested, self.available
        )
    }
}

impl std::error::Error for AllocError {}

#[derive(Debug)]
struct Tier {
    name: String,
    capacity: ByteSize,
    used: ByteSize,
}

#[derive(Debug, Clone, Copy)]
struct Allocation {
    tier: TierId,
    bytes: ByteSize,
    live: bool,
}

/// A multi-tier capacity-tracking allocator.
///
/// # Examples
///
/// ```
/// use hetmem::{TieredAllocator};
/// use simcore::units::ByteSize;
///
/// let mut alloc = TieredAllocator::new();
/// let dram = alloc.add_tier("dram", ByteSize::from_gb(4.0));
/// let a = alloc.allocate(dram, ByteSize::from_gb(3.0))?;
/// assert!(alloc.allocate(dram, ByteSize::from_gb(2.0)).is_err());
/// alloc.free(a);
/// assert_eq!(alloc.used(dram), ByteSize::ZERO);
/// # Ok::<(), hetmem::AllocError>(())
/// ```
#[derive(Debug, Default)]
pub struct TieredAllocator {
    tiers: Vec<Tier>,
    allocations: Vec<Allocation>,
}

impl TieredAllocator {
    /// Creates an allocator with no tiers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tier with the given capacity, returning its id.
    pub fn add_tier(&mut self, name: impl Into<String>, capacity: ByteSize) -> TierId {
        self.tiers.push(Tier {
            name: name.into(),
            capacity,
            used: ByteSize::ZERO,
        });
        TierId(self.tiers.len() - 1)
    }

    /// Allocates `bytes` on `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the tier lacks free capacity.
    ///
    /// # Panics
    ///
    /// Panics if `tier` does not belong to this allocator.
    pub fn allocate(&mut self, tier: TierId, bytes: ByteSize) -> Result<AllocationId, AllocError> {
        let t = &mut self.tiers[tier.0];
        let available = t.capacity.saturating_sub(t.used);
        if bytes > available {
            return Err(AllocError {
                tier,
                requested: bytes,
                available,
                tier_name: t.name.clone(),
            });
        }
        t.used += bytes;
        self.allocations.push(Allocation {
            tier,
            bytes,
            live: true,
        });
        Ok(AllocationId(self.allocations.len() as u64 - 1))
    }

    /// Releases a live allocation.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id or a double free.
    pub fn free(&mut self, id: AllocationId) {
        let a = &mut self.allocations[id.0 as usize];
        assert!(a.live, "double free of {id:?}");
        a.live = false;
        let t = &mut self.tiers[a.tier.0];
        t.used = t.used - a.bytes;
    }

    /// Bytes currently allocated on `tier`.
    pub fn used(&self, tier: TierId) -> ByteSize {
        self.tiers[tier.0].used
    }

    /// Bytes still free on `tier`.
    pub fn available(&self, tier: TierId) -> ByteSize {
        let t = &self.tiers[tier.0];
        t.capacity.saturating_sub(t.used)
    }

    /// The tier's configured capacity.
    pub fn capacity(&self, tier: TierId) -> ByteSize {
        self.tiers[tier.0].capacity
    }

    /// The tier's name.
    pub fn tier_name(&self, tier: TierId) -> &str {
        &self.tiers[tier.0].name
    }

    /// Ids of all registered tiers.
    pub fn tiers(&self) -> impl Iterator<Item = TierId> + '_ {
        (0..self.tiers.len()).map(TierId)
    }

    /// Whether `bytes` would fit on `tier` right now.
    pub fn would_fit(&self, tier: TierId, bytes: ByteSize) -> bool {
        bytes <= self.available(tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> ByteSize {
        ByteSize::from_gb(x)
    }

    #[test]
    fn allocation_and_accounting() {
        let mut alloc = TieredAllocator::new();
        let t = alloc.add_tier("optane", gb(10.0));
        let a = alloc.allocate(t, gb(4.0)).unwrap();
        let _b = alloc.allocate(t, gb(5.0)).unwrap();
        assert_eq!(alloc.used(t), gb(9.0));
        assert_eq!(alloc.available(t), gb(1.0));
        alloc.free(a);
        assert_eq!(alloc.used(t), gb(5.0));
    }

    #[test]
    fn over_allocation_reports_detail() {
        let mut alloc = TieredAllocator::new();
        let t = alloc.add_tier("dram", gb(1.0));
        let err = alloc.allocate(t, gb(2.0)).unwrap_err();
        assert_eq!(err.requested, gb(2.0));
        assert_eq!(err.available, gb(1.0));
        assert!(err.to_string().contains("dram"));
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut alloc = TieredAllocator::new();
        let t = alloc.add_tier("hbm", gb(40.0));
        assert!(alloc.allocate(t, gb(40.0)).is_ok());
        assert_eq!(alloc.available(t), ByteSize::ZERO);
        assert!(!alloc.would_fit(t, ByteSize::from_bytes(1)));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut alloc = TieredAllocator::new();
        let t = alloc.add_tier("x", gb(1.0));
        let a = alloc.allocate(t, gb(0.5)).unwrap();
        alloc.free(a);
        alloc.free(a);
    }

    #[test]
    fn multiple_tiers_are_independent() {
        let mut alloc = TieredAllocator::new();
        let a = alloc.add_tier("a", gb(1.0));
        let b = alloc.add_tier("b", gb(2.0));
        alloc.allocate(a, gb(1.0)).unwrap();
        assert_eq!(alloc.available(b), gb(2.0));
        assert_eq!(alloc.tier_name(a), "a");
        assert_eq!(alloc.tiers().count(), 2);
        assert_eq!(alloc.capacity(b), gb(2.0));
    }
}
