//! # hetmem — heterogeneous host memory models
//!
//! Calibrated performance models of every host-side memory technology
//! evaluated in the paper (§II–§IV): DDR4 DRAM, Intel Optane DCPMM
//! (both as a flat NUMA tier and in Memory Mode behind a DRAM cache),
//! Optane exposed through storage interfaces (plain file system and
//! ext4-DAX), and CXL Type-3 memory expanders (FPGA and ASIC
//! controller classes from Table III).
//!
//! The crate provides:
//!
//! * [`MemoryDevice`] — the common device model trait: capacity, idle
//!   latency, and bandwidth as a function of an [`AccessProfile`]
//!   (access kind, buffer size, concurrency, locality).
//! * Concrete devices in [`dram`], [`optane`], [`memmode`],
//!   [`storage`], and [`cxl`].
//! * [`numa`] — the dual-socket Ice Lake topology of Table I.
//! * [`tier`] — a memkind-like tiered allocator with capacity
//!   accounting.
//! * [`config`] — the memory configurations of Table II, each bundling
//!   a weight tier, a working tier, and a staging rule.
//! * [`mlc`] — an Intel MLC-style measurement harness over the models.
//!
//! Every calibration constant carries a provenance note pointing at
//! the paper figure or the cited measurement study it reproduces.
//!
//! # Examples
//!
//! ```
//! use hetmem::{AccessKind, AccessProfile, MemoryDevice};
//! use hetmem::dram::DramDevice;
//! use simcore::units::ByteSize;
//!
//! let dram = DramDevice::ddr4_2933_socket();
//! let profile = AccessProfile::sequential_read(ByteSize::from_gb(1.0)).with_concurrency(16);
//! let bw = dram.bandwidth(&profile);
//! assert!(bw.as_gb_per_s() > 100.0);
//! # let _ = AccessKind::SeqRead;
//! ```

pub mod config;
pub mod cxl;
pub mod device;
pub mod dram;
pub mod fault;
pub mod memmode;
pub mod mlc;
pub mod numa;
pub mod optane;
pub mod storage;
pub mod tier;
pub mod tiering;

pub use config::{HostMemoryConfig, MemoryConfigKind};
pub use device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology, Staging};
pub use numa::{NodeId, NumaTopology};
pub use tier::{AllocError, TierId, TieredAllocator};
