//! The memory device model trait and access profiles.

use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};
use std::fmt;

/// The kind of access stream hitting a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Streaming reads (weight loads, DMA reads).
    SeqRead,
    /// Streaming writes (KV-cache spills, DMA writes).
    SeqWrite,
    /// Pointer-chasing reads (latency probes).
    RandRead,
    /// Scattered writes.
    RandWrite,
}

impl AccessKind {
    /// Whether this kind reads from the device.
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::SeqRead | AccessKind::RandRead)
    }

    /// Whether this kind is sequential.
    pub fn is_sequential(self) -> bool {
        matches!(self, AccessKind::SeqRead | AccessKind::SeqWrite)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::SeqRead => "seq-read",
            AccessKind::SeqWrite => "seq-write",
            AccessKind::RandRead => "rand-read",
            AccessKind::RandWrite => "rand-write",
        };
        f.write_str(s)
    }
}

/// A description of the access stream a bandwidth query models.
///
/// `buffer` is the size of the working set being streamed in one
/// operation: Optane-class devices degrade as it grows (address
/// indirection table thrash, wear-leveling-induced scatter — paper
/// §IV-A), while DRAM is flat.
///
/// # Examples
///
/// ```
/// use hetmem::AccessProfile;
/// use simcore::units::ByteSize;
///
/// let p = AccessProfile::sequential_read(ByteSize::from_mb(256.0));
/// assert!(!p.remote);
/// assert_eq!(p.concurrency, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccessProfile {
    /// Read/write, sequential/random.
    pub kind: AccessKind,
    /// Size of the streamed working set.
    pub buffer: ByteSize,
    /// Number of concurrent request streams (DMA engines, threads).
    pub concurrency: u32,
    /// Whether the initiator sits on a different socket than the
    /// device (crosses the processor interconnect).
    pub remote: bool,
    /// Long-run re-reference footprint, when it differs from `buffer`
    /// (e.g. cycling through all host-resident model weights while
    /// each individual transfer is one layer). Drives cache hit rates
    /// (Memory Mode) and address-indirection-table thrash (Optane).
    pub working_set: Option<ByteSize>,
}

impl AccessProfile {
    /// A single local sequential read stream over `buffer`.
    pub fn sequential_read(buffer: ByteSize) -> Self {
        AccessProfile {
            kind: AccessKind::SeqRead,
            buffer,
            concurrency: 1,
            remote: false,
            working_set: None,
        }
    }

    /// A single local sequential write stream over `buffer`.
    pub fn sequential_write(buffer: ByteSize) -> Self {
        AccessProfile {
            kind: AccessKind::SeqWrite,
            buffer,
            concurrency: 1,
            remote: false,
            working_set: None,
        }
    }

    /// Sets the long-run re-reference footprint.
    pub fn with_working_set(mut self, working_set: ByteSize) -> Self {
        self.working_set = Some(working_set);
        self
    }

    /// The effective footprint: `working_set` if set, else `buffer`.
    pub fn footprint(&self) -> ByteSize {
        self.working_set.unwrap_or(self.buffer)
    }

    /// Marks the profile as crossing the socket interconnect.
    pub fn remote(mut self) -> Self {
        self.remote = true;
        self
    }

    /// Sets the number of concurrent streams.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_concurrency(mut self, n: u32) -> Self {
        assert!(n > 0, "concurrency must be positive");
        self.concurrency = n;
        self
    }
}

/// Broad technology class of a device; used by the data-path composer
/// to pick interaction models (e.g. inbound-PCIe mesh contention only
/// hurts Optane writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTechnology {
    /// Conventional DDR DRAM.
    Dram,
    /// Phase-change persistent memory (Optane DCPMM).
    Pcm,
    /// Optane behind a direct-mapped DRAM cache (Memory Mode).
    PcmCached,
    /// Block storage reached through a file system.
    BlockStorage,
    /// CXL Type-3 memory expander.
    CxlExpander,
}

impl fmt::Display for MemoryTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryTechnology::Dram => "DRAM",
            MemoryTechnology::Pcm => "PCM",
            MemoryTechnology::PcmCached => "PCM+DRAM-cache",
            MemoryTechnology::BlockStorage => "block-storage",
            MemoryTechnology::CxlExpander => "CXL",
        };
        f.write_str(s)
    }
}

/// How data reaches a DMA engine from this device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staging {
    /// The device is directly DMA-addressable.
    Direct,
    /// Data must be staged through a DRAM bounce buffer first
    /// (file-system-interfaced tiers: SSD, FSDAX — paper §IV-B).
    BounceBuffer,
}

/// A host memory device performance model.
///
/// Implementations are pure and cheap: `bandwidth` is called inside
/// the inner loop of the pipeline simulator.
pub trait MemoryDevice: fmt::Debug {
    /// Human-readable device name (e.g. `"DDR4-2933 x8"`).
    fn name(&self) -> String;

    /// Total capacity.
    fn capacity(&self) -> ByteSize;

    /// Technology class.
    fn technology(&self) -> MemoryTechnology;

    /// Achievable bandwidth under `profile`.
    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth;

    /// The service-rate mix behind [`MemoryDevice::bandwidth`]:
    /// `(fraction_of_bytes, rate)` pairs summing to fraction 1.0.
    ///
    /// Devices with internal tiers (Memory Mode: DRAM-cache hits vs
    /// Optane misses) override this so a data-path composer can cap
    /// each component by the interconnect *before* blending — a hit
    /// stream capped by PCIe must not mask miss-path stalls.
    fn service_components(&self, profile: &AccessProfile) -> Vec<(f64, Bandwidth)> {
        vec![(1.0, self.bandwidth(profile))]
    }

    /// Unloaded access latency for `kind`, `remote` across sockets.
    fn idle_latency(&self, kind: AccessKind, remote: bool) -> SimDuration;

    /// Whether DMA can target the device directly or must bounce
    /// through DRAM.
    fn staging(&self) -> Staging {
        Staging::Direct
    }
}

impl<D: MemoryDevice + ?Sized> MemoryDevice for std::sync::Arc<D> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn capacity(&self) -> ByteSize {
        (**self).capacity()
    }
    fn technology(&self) -> MemoryTechnology {
        (**self).technology()
    }
    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        (**self).bandwidth(profile)
    }
    fn service_components(&self, profile: &AccessProfile) -> Vec<(f64, Bandwidth)> {
        (**self).service_components(profile)
    }
    fn idle_latency(&self, kind: AccessKind, remote: bool) -> SimDuration {
        (**self).idle_latency(kind, remote)
    }
    fn staging(&self) -> Staging {
        (**self).staging()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::SeqRead.is_read());
        assert!(AccessKind::RandRead.is_read());
        assert!(!AccessKind::SeqWrite.is_read());
        assert!(AccessKind::SeqWrite.is_sequential());
        assert!(!AccessKind::RandWrite.is_sequential());
    }

    #[test]
    fn profile_builders_compose() {
        let p = AccessProfile::sequential_write(ByteSize::from_mb(1.0))
            .remote()
            .with_concurrency(4);
        assert_eq!(p.kind, AccessKind::SeqWrite);
        assert!(p.remote);
        assert_eq!(p.concurrency, 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_concurrency_rejected() {
        let _ = AccessProfile::sequential_read(ByteSize::ZERO).with_concurrency(0);
    }

    #[test]
    fn displays_are_nonempty() {
        for kind in [
            AccessKind::SeqRead,
            AccessKind::SeqWrite,
            AccessKind::RandRead,
            AccessKind::RandWrite,
        ] {
            assert!(!kind.to_string().is_empty());
        }
        for tech in [
            MemoryTechnology::Dram,
            MemoryTechnology::Pcm,
            MemoryTechnology::PcmCached,
            MemoryTechnology::BlockStorage,
            MemoryTechnology::CxlExpander,
        ] {
            assert!(!tech.to_string().is_empty());
        }
    }
}
