//! Criterion microbenchmarks: group-wise quantizer throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use llm::quant::GroupQuant;
use std::hint::black_box;

fn bench_quant(c: &mut Criterion) {
    let sizes = [4 << 10, 256 << 10, 4 << 20];
    let mut group = c.benchmark_group("quant/quantize");
    for &n in &sizes {
        let data: Vec<f32> = (0..n)
            .map(|i| ((i * 2654435761usize) % 997) as f32)
            .collect();
        let q = GroupQuant::default();
        group.throughput(Throughput::Bytes((n * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| q.quantize(black_box(data)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("quant/dequantize");
    for &n in &sizes {
        let data: Vec<f32> = (0..n).map(|i| ((i * 40503) % 1231) as f32).collect();
        let q = GroupQuant::default();
        let t = q.quantize(&data);
        group.throughput(Throughput::Bytes((n * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| q.dequantize(black_box(t)));
        });
    }
    group.finish();

    c.bench_function("quant/size-model", |b| {
        let q = GroupQuant::default();
        b.iter(|| q.compressed_bytes(black_box(150_994_944)));
    });
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
