//! Criterion microbenchmarks: end-to-end pipeline simulation cost —
//! how fast the simulator itself serves a full request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use std::hint::black_box;
use workload::WorkloadSpec;

fn server(model: ModelConfig, kind: PlacementKind, batch: u32) -> Server {
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
        .with_placement(kind)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
    .expect("fits")
}

fn bench_pipeline(c: &mut Criterion) {
    let workload = WorkloadSpec::paper_default();

    let mut group = c.benchmark_group("pipeline/full-run");
    group.sample_size(20);
    for (label, model) in [
        ("opt-30b", ModelConfig::opt_30b()),
        ("opt-175b", ModelConfig::opt_175b()),
    ] {
        let s = server(model, PlacementKind::Baseline, 1);
        group.bench_with_input(BenchmarkId::from_parameter(label), &s, |b, s| {
            b.iter(|| s.run_unchecked(black_box(&workload)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pipeline/by-policy");
    group.sample_size(20);
    for kind in [
        PlacementKind::Baseline,
        PlacementKind::Helm,
        PlacementKind::AllCpu,
    ] {
        let s = server(ModelConfig::opt_175b(), kind, 1);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &s, |b, s| {
            b.iter(|| s.run_unchecked(black_box(&workload)));
        });
    }
    group.finish();

    c.bench_function("pipeline/max-batch-solve", |b| {
        let s = server(ModelConfig::opt_175b(), PlacementKind::AllCpu, 1);
        b.iter(|| s.max_batch(black_box(&workload)));
    });

    let mut group = c.benchmark_group("pipeline/des-vs-analytic");
    group.sample_size(20);
    let s = server(ModelConfig::opt_175b(), PlacementKind::AllCpu, 8);
    group.bench_function("analytic", |b| {
        b.iter(|| s.run_unchecked(black_box(&workload)));
    });
    group.bench_function("des", |b| {
        b.iter(|| s.run_des(black_box(&workload)).expect("fits"));
    });
    group.finish();

    let mut group = c.benchmark_group("autoplace");
    group.sample_size(10);
    group.bench_function("latency-grid-search", |b| {
        let s = server(ModelConfig::opt_175b(), PlacementKind::Baseline, 1);
        b.iter(|| {
            helm_core::autoplace::optimize(
                s.system(),
                s.model(),
                s.policy(),
                black_box(&workload),
                helm_core::autoplace::Objective::Latency,
            )
            .expect("search succeeds")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
