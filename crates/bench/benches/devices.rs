//! Criterion microbenchmarks: device-model and data-path query cost
//! (these sit in the pipeline simulator's inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmem::memmode::MemoryModeDevice;
use hetmem::optane::OptaneDevice;
use hetmem::{AccessProfile, MemoryDevice, NodeId};
use simcore::units::ByteSize;
use std::hint::black_box;
use xfer::nvbandwidth;
use xfer::path::{HostEndpoint, PathModel, TransferRequest};

fn bench_devices(c: &mut Criterion) {
    let profile = AccessProfile::sequential_read(ByteSize::from_mb(300.0))
        .with_working_set(ByteSize::from_gb(300.0));

    let mut group = c.benchmark_group("device/bandwidth-query");
    let optane = OptaneDevice::dcpmm_200_socket();
    group.bench_with_input(BenchmarkId::from_parameter("optane"), &optane, |b, d| {
        b.iter(|| d.bandwidth(black_box(&profile)));
    });
    let mm = MemoryModeDevice::paper_socket();
    group.bench_with_input(BenchmarkId::from_parameter("memmode"), &mm, |b, d| {
        b.iter(|| d.bandwidth(black_box(&profile)));
    });
    group.finish();

    let path = PathModel::paper_system();
    let req = TransferRequest::host_to_gpu(ByteSize::from_mb(300.0))
        .with_working_set(ByteSize::from_gb(300.0));
    c.bench_function("path/effective-bandwidth", |b| {
        let ep = HostEndpoint::direct(&optane, NodeId(0));
        b.iter(|| path.effective_bandwidth(black_box(&ep), black_box(&req)));
    });
    c.bench_function("path/transfer-time", |b| {
        let ep = HostEndpoint::direct(&optane, NodeId(0));
        b.iter(|| path.transfer_time(black_box(&ep), black_box(&req)));
    });

    let mut group = c.benchmark_group("sweeps");
    group.sample_size(20);
    group.bench_function("nvbandwidth-fig3", |b| {
        b.iter(|| nvbandwidth::sweep(black_box(&path)));
    });
    group.bench_function("mlc-matrix", |b| {
        let topo = hetmem::numa::NumaTopology::paper_system();
        b.iter(|| hetmem::mlc::run(black_box(&topo), ByteSize::from_gb(1.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_devices);
criterion_main!(benches);
