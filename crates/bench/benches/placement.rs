//! Criterion microbenchmarks: weight-placement algorithm cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::Policy;
use hetmem::MemoryConfigKind;
use llm::ModelConfig;
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let model = ModelConfig::opt_175b();
    let mut group = c.benchmark_group("placement/opt-175b");
    for kind in [
        PlacementKind::Baseline,
        PlacementKind::Helm,
        PlacementKind::AllCpu,
    ] {
        let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram)
            .with_placement(kind)
            .with_compression(true);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &policy, |b, policy| {
            b.iter(|| ModelPlacement::compute(black_box(&model), black_box(policy)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("placement/aggregates");
    let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram).with_compression(true);
    let placement = ModelPlacement::compute(&model, &policy);
    group.bench_function("achieved_distribution", |b| {
        b.iter(|| black_box(&placement).achieved_distribution());
    });
    group.bench_function("staging_bytes", |b| {
        b.iter(|| black_box(&placement).staging_bytes());
    });
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
