//! Figures 9 & 10: HeLM's weight distribution — which tensors land on
//! the GPU versus host, and the achieved MHA/FFN splits.

use bench::{print_comparisons, print_table, section, Comparison};
use helm_core::placement::{ModelPlacement, PlacementKind, Tier};
use helm_core::policy::Policy;
use hetmem::MemoryConfigKind;
use llm::layers::LayerKind;
use llm::weights::DType;
use llm::ModelConfig;

fn main() {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram)
        .with_placement(PlacementKind::Helm)
        .with_compression(true);
    let placement = ModelPlacement::compute(&model, &policy);

    section("Fig 9: HeLM per-tensor placement (one decoder block, compressed sizes)");
    println!(
        "{:<8} {:<10} {:<6} {:>14}",
        "layer", "tensor", "tier", "bytes"
    );
    for lp in placement.layers().iter().skip(1).take(2) {
        for w in lp.weights() {
            println!(
                "{:<8} {:<10} {:<6} {:>14}",
                lp.layer().kind().to_string(),
                w.spec.name(),
                w.tier.to_string(),
                w.spec.bytes(DType::Int4Grouped).to_string(),
            );
        }
    }

    section("Fig 10: HeLM achieved distribution");
    let mha = placement.distribution_for_kind(LayerKind::Mha);
    let ffn = placement.distribution_for_kind(LayerKind::Ffn);
    print_table(
        &["layer kind", "disk %", "cpu %", "gpu %"],
        &[
            ("MHA".to_owned(), mha.to_vec()),
            ("FFN".to_owned(), ffn.to_vec()),
        ],
    );

    let achieved = placement.achieved_distribution();
    let baseline = ModelPlacement::compute(
        &model,
        &Policy::paper_default(&model, MemoryConfigKind::NvDram).with_compression(true),
    );
    let dtype = placement.dtype();
    let offloaded = |p: &ModelPlacement, kind: LayerKind| {
        p.layers()
            .iter()
            .filter(|l| l.layer().kind() == kind)
            .map(|l| l.offloaded_bytes(dtype).as_f64())
            .sum::<f64>()
    };
    print_comparisons(&[
        Comparison::new(
            "total weights held on GPU (paper: ~33%)",
            33.0,
            achieved[2],
            "%",
        ),
        Comparison::new(
            "FFN transfer bytes reduced vs baseline",
            49.33,
            (1.0 - offloaded(&placement, LayerKind::Ffn) / offloaded(&baseline, LayerKind::Ffn))
                * 100.0,
            "%",
        ),
        Comparison::new(
            "MHA transfer bytes increased vs baseline",
            32.55,
            (offloaded(&placement, LayerKind::Mha) / offloaded(&baseline, LayerKind::Mha) - 1.0)
                * 100.0,
            "%",
        ),
    ]);
    println!(
        "\nGPU-resident total: {} (of {} compressed weights)",
        placement.total_on(Tier::Gpu),
        placement.total_on(Tier::Gpu) + placement.total_on(Tier::Cpu),
    );
}
