//! Figure 6: compute/communication overlap with group-wise 4-bit
//! compression for OPT-175B under NVDIMM, MemoryMode, and DRAM.
//! Compression cuts transfer ~72-74% at the cost of 2.5-13x compute.

use bench::{print_comparisons, print_table, run_serving, section, Comparison};
use helm_core::metrics::{RunReport, Stage};
use helm_core::placement::PlacementKind;
use helm_core::HelmError;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn run(memory: HostMemoryConfig, compressed: bool) -> Result<RunReport, HelmError> {
    run_serving(
        ModelConfig::opt_175b(),
        memory,
        PlacementKind::Baseline,
        compressed,
        1,
        &WorkloadSpec::paper_default(),
    )
}

fn main() -> Result<(), HelmError> {
    let nv = run(HostMemoryConfig::nvdram(), false)?;
    let nv_c = run(HostMemoryConfig::nvdram(), true)?;
    let mm = run(HostMemoryConfig::memory_mode(), false)?;
    let mm_c = run(HostMemoryConfig::memory_mode(), true)?;
    let dram_c = run(HostMemoryConfig::dram(), true)?;

    section("Fig 6: OPT-175B prefill/decode overlap with compression");
    let mut rows = Vec::new();
    for stage in [Stage::Prefill, Stage::Decode] {
        for (label, r) in [
            ("NVDIMM", &nv),
            ("NVDIMM (c)", &nv_c),
            ("MemoryMode", &mm),
            ("MemoryMode (c)", &mm_c),
            ("DRAM (c)", &dram_c),
        ] {
            rows.push((
                format!("{label} {stage}"),
                vec![
                    r.avg_hidden_weight_transfer(stage).as_millis(),
                    r.avg_hidden_compute(stage).as_millis(),
                ],
            ));
        }
    }
    print_table(&["config/stage", "xfer(ms)", "compute(ms)"], &rows);

    section("Fig 6: paper claims");
    let xfer = |r: &RunReport| r.avg_hidden_weight_transfer(Stage::Decode).as_millis();
    let comp = |r: &RunReport| r.avg_hidden_compute(Stage::Decode).as_millis();
    print_comparisons(&[
        Comparison::new(
            "NVDIMM transfer reduction",
            72.0,
            (1.0 - xfer(&nv_c) / xfer(&nv)) * 100.0,
            "%",
        ),
        Comparison::new(
            "MemoryMode transfer reduction",
            74.0,
            (1.0 - xfer(&mm_c) / xfer(&mm)) * 100.0,
            "%",
        ),
        Comparison::new(
            "NVDIMM (c) transfer within of DRAM ideal",
            25.0,
            (xfer(&nv_c) / xfer(&dram_c) - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "MemoryMode (c) transfer within of DRAM ideal",
            6.0,
            (xfer(&mm_c) / xfer(&dram_c) - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "NVDIMM compute increase (within 2.5x-13x)",
            10.0,
            comp(&nv_c) / comp(&nv),
            "x",
        ),
    ]);
    Ok(())
}
