//! Extension: scaling online serving across pipeline replicas — the
//! cluster view of the paper's latency/throughput dial.
//!
//! For each placement policy, sweep the Poisson arrival rate against
//! 1, 2, and 4 pipeline replicas (join-shortest-queue dispatch) and
//! report p95 end-to-end latency and sustained token throughput. A λ
//! that saturates one pipeline (utilization → 1, queues unbounded
//! over the window) is absorbed by four; the replica count shifts the
//! knee of every policy's latency curve without changing its
//! single-pipeline service times.

use bench::{print_table, section};
use helm_core::online::{run_cluster, ClusterSpec, PoissonArrivals, SchedulerKind};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn server(placement: PlacementKind, batch: u32) -> Result<Server, helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
}

fn main() -> Result<(), helm_core::HelmError> {
    let ws = WorkloadSpec::paper_default();
    let n = 120;
    let seed = 42;

    for (label, placement, batch) in [
        ("Baseline b=8", PlacementKind::Baseline, 8u32),
        ("HeLM b=8", PlacementKind::Helm, 8),
        ("All-CPU b=44", PlacementKind::AllCpu, 44),
    ] {
        section(&format!(
            "{label}: pipeline scaling under Poisson load (OPT-175B, NVDRAM, compressed)"
        ));
        let s = server(placement, batch)?;
        let mut rows = Vec::new();
        for lambda in [0.03f64, 0.10, 0.25] {
            let mut values = Vec::new();
            for pipelines in [1usize, 2, 4] {
                let spec =
                    ClusterSpec::new(pipelines).with_scheduler(SchedulerKind::JoinShortestQueue);
                let mut arrivals = PoissonArrivals::new(lambda, seed);
                let r = run_cluster(&s, &ws, &mut arrivals, n, spec)?;
                values.push(r.e2e_percentile_ms(95.0) / 1000.0);
                values.push(r.tokens_per_s);
            }
            rows.push((format!("{lambda:.2} req/s"), values));
        }
        print_table(
            &[
                "arrival rate",
                "N=1 p95(s)",
                "N=1 tok/s",
                "N=2 p95(s)",
                "N=2 tok/s",
                "N=4 p95(s)",
                "N=4 tok/s",
            ],
            &rows,
        );
    }

    section("All-CPU b=44: run-to-completion vs continuous batching (N=1)");
    let s = server(PlacementKind::AllCpu, 44)?;
    let mut rows = Vec::new();
    for lambda in [0.03f64, 0.10, 0.25] {
        let mut values = Vec::new();
        for continuous in [false, true] {
            let spec = ClusterSpec::new(1).with_continuous(continuous);
            let mut arrivals = PoissonArrivals::new(lambda, seed);
            let r = run_cluster(&s, &ws, &mut arrivals, n, spec)?;
            values.push(r.mean_queue_delay_ms() / 1000.0);
            values.push(r.e2e_percentile_ms(95.0) / 1000.0);
        }
        rows.push((format!("{lambda:.2} req/s"), values));
    }
    print_table(
        &[
            "arrival rate",
            "rtc queue(s)",
            "rtc p95(s)",
            "cont queue(s)",
            "cont p95(s)",
        ],
        &rows,
    );

    println!(
        "\nReading: replicas move the saturation knee -- the rate that drives\n\
         one pipeline's queues unbounded is served with bounded p95 by four,\n\
         and token throughput scales near-linearly until the cluster in turn\n\
         saturates. Continuous batching attacks a different term: at moderate\n\
         load it admits arrivals at decode-step boundaries instead of making\n\
         them wait out the in-flight batch, collapsing queueing delay without\n\
         any extra hardware."
    );
    Ok(())
}
