//! Sensitivity sweeps beyond the paper's measured points:
//!
//! 1. host-bandwidth continuum (generalizing Fig 13 / Table III to
//!    the whole CXL design space),
//! 2. sequence-length sweep (the workload axis §III-B fixes at
//!    128/21),
//! 3. micro-batching sweep (FlexGen's block schedule, which the paper
//!    holds at 1).

use bench::{print_table, section};
use helm_core::metrics::Stage;
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use simcore::units::Bandwidth;
use workload::WorkloadSpec;

fn serve(
    memory: HostMemoryConfig,
    placement: PlacementKind,
    batch: u32,
    gpu_batches: u32,
    workload: &WorkloadSpec,
) -> Result<helm_core::RunReport, helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch)
        .with_gpu_batches(gpu_batches);
    Server::new(SystemConfig::paper_platform(memory), model, policy)?.run_unchecked(workload)
}

fn main() -> Result<(), helm_core::HelmError> {
    let ws = WorkloadSpec::paper_default();

    section("1. host-bandwidth continuum (OPT-175B, compressed, batch 1)");
    let mut rows = Vec::new();
    for gbps in [2.0, 5.12, 10.0, 16.0, 28.0, 40.0, 64.0] {
        let memory = HostMemoryConfig::cxl_custom(Bandwidth::from_gb_per_s(gbps));
        let base = serve(memory.clone(), PlacementKind::Baseline, 1, 1, &ws)?;
        let helm = serve(memory, PlacementKind::Helm, 1, 1, &ws)?;
        rows.push((
            format!("{gbps:.2} GB/s"),
            vec![
                base.tbt_ms(),
                helm.tbt_ms(),
                (1.0 - helm.tbt_ms() / base.tbt_ms()) * 100.0,
                helm.overlap_ratio(Stage::Decode, LayerKind::Mha, LayerKind::Ffn),
            ],
        ));
    }
    print_table(
        &["expander bw", "base TBT", "HeLM TBT", "gain %", "MHAc/FFNl"],
        &rows,
    );

    section("2. sequence-length sweep (NVDRAM, HeLM, batch 1)");
    let mut rows = Vec::new();
    for prompt in [64usize, 128, 256, 512, 1024] {
        let ws = WorkloadSpec::new(prompt, 21, 1);
        let r = serve(HostMemoryConfig::nvdram(), PlacementKind::Helm, 1, 1, &ws)?;
        rows.push((
            format!("prompt {prompt}"),
            vec![r.ttft_ms(), r.tbt_ms(), r.throughput_tps()],
        ));
    }
    print_table(&["workload", "TTFT(ms)", "TBT(ms)", "tok/s"], &rows);

    section("3. micro-batching sweep (NVDRAM, All-CPU, gpu-batch 4)");
    let mut rows = Vec::new();
    for k in [1u32, 2, 4, 8, 11] {
        let r = serve(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 4, k, &ws)?;
        rows.push((
            format!("4 x {k} = {}", 4 * k),
            vec![r.tbt_ms(), r.throughput_tps()],
        ));
    }
    print_table(&["effective batch", "TBT(ms)", "tok/s"], &rows);
    println!(
        "\nReading: (1) HeLM's gain shrinks once the expander alone outruns\n\
         the compute side -- the pipeline goes compute-bound; (2) TTFT grows\n\
         with prompt length while TBT barely moves (decode reads one token);\n\
         (3) micro-batching buys throughput at constant weight traffic until\n\
         compute saturates the pipeline."
    );
    Ok(())
}
