//! Table I: the simulated system configuration, plus the MLC-style
//! NUMA characterization the paper uses to confirm it (§IV-A).

use bench::section;
use gpusim::GpuSpec;
use hetmem::mlc;
use hetmem::numa::NumaTopology;
use hetmem::MemoryDevice;
use simcore::units::ByteSize;
use xfer::pcie::PcieLink;

fn main() {
    let topo = NumaTopology::paper_system();
    let gpu = GpuSpec::a100_40gb();
    let pcie = PcieLink::gen4_x16();

    section("Table I: system configuration");
    println!("CPU      : dual-socket Intel Xeon Gold 6330 (Ice Lake), modeled");
    println!("Sockets  : {}", topo.sockets().len());
    for s in topo.sockets() {
        println!(
            "  {}: DRAM {} (DDR4-2933, 4 controllers x2 DIMM), Optane {} (DCPMM 200 x4)",
            s.node(),
            s.dram().capacity(),
            s.optane()
                .map(MemoryDevice::capacity)
                .unwrap_or(ByteSize::ZERO),
        );
    }
    println!(
        "Total    : DRAM {}, Optane {}",
        topo.total_dram(),
        topo.total_optane()
    );
    println!(
        "GPU      : {} | HBM {} @ {} | {:?} x{} = {}",
        gpu.name(),
        gpu.hbm_capacity(),
        gpu.hbm_bandwidth(),
        pcie.gen(),
        pcie.lanes(),
        pcie.theoretical(),
    );

    section("Intel MLC-style characterization (SS IV-A)");
    let report = mlc::run(&topo, ByteSize::from_gb(1.0));
    print!("{}", report.to_table());
    println!(
        "\nObservations reproduced: Optane latency ~4x DRAM; Optane writes\n\
         collapse remotely; remote DRAM latency ~1.7x local."
    );
}
