//! Figure 12: All-CPU weight allocation on OPT-175B — TTFT/TBT/
//! throughput at batch sizes 1, 8, and 44 (44 only possible with
//! All-CPU), plus the compute/communication overlap comparisons.

use bench::{print_comparisons, print_table, run_serving, section, Comparison};
use helm_core::metrics::{RunReport, Stage};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn run(
    memory: HostMemoryConfig,
    placement: PlacementKind,
    batch: u32,
) -> Result<RunReport, helm_core::HelmError> {
    run_serving(
        ModelConfig::opt_175b(),
        memory,
        placement,
        true,
        batch,
        &WorkloadSpec::paper_default(),
    )
}

fn max_batch(
    memory: HostMemoryConfig,
    placement: PlacementKind,
    compressed: bool,
) -> Result<u32, helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(compressed);
    Ok(
        Server::new(SystemConfig::paper_platform(memory), model, policy)?
            .max_batch(&WorkloadSpec::paper_default()),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section("Maximum batch sizes (paper: 8 baseline -> 44 All-CPU)");
    let base_max = max_batch(HostMemoryConfig::nvdram(), PlacementKind::Baseline, false)?;
    let all_max = max_batch(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true)?;
    print_comparisons(&[
        Comparison::new(
            "baseline (uncompressed) max batch",
            8.0,
            f64::from(base_max),
            "seq",
        ),
        Comparison::new(
            "All-CPU (compressed) max batch",
            44.0,
            f64::from(all_max),
            "seq",
        ),
    ]);

    section("Fig 12a-c: TTFT / TBT / throughput");
    let mut reports = Vec::new();
    for (memory, label) in [
        (HostMemoryConfig::nvdram(), "NVDIMM"),
        (HostMemoryConfig::memory_mode(), "MemoryMode"),
        (HostMemoryConfig::dram(), "DRAM"),
    ] {
        for batch in [1u32, 8] {
            reports.push((
                format!("{label} baseline b={batch}"),
                run(memory.clone(), PlacementKind::Baseline, batch)?,
            ));
        }
        for batch in [1u32, 8, 44] {
            reports.push((
                format!("{label} All-CPU b={batch}"),
                run(memory.clone(), PlacementKind::AllCpu, batch)?,
            ));
        }
    }
    let rows: Vec<(String, Vec<f64>)> = reports
        .iter()
        .map(|(label, r)| {
            (
                label.clone(),
                vec![r.ttft_ms(), r.tbt_ms(), r.throughput_tps()],
            )
        })
        .collect();
    print_table(&["config", "TTFT(ms)", "TBT(ms)", "tok/s"], &rows);

    let find = |label: &str| {
        reports
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| r)
            .ok_or_else(|| format!("report {label:?} missing"))
    };
    let nv_base8 = find("NVDIMM baseline b=8")?;
    let nv_all8 = find("NVDIMM All-CPU b=8")?;
    let nv_all44 = find("NVDIMM All-CPU b=44")?;
    let mm_all44 = find("MemoryMode All-CPU b=44")?;
    let dram_all44 = find("DRAM All-CPU b=44")?;

    section("Fig 12d/12e: overlap, baseline b=8 vs All-CPU b=44 (NVDIMM)");
    let mut rows = Vec::new();
    for stage in [Stage::Prefill, Stage::Decode] {
        for (label, r) in [("baseline b=8", nv_base8), ("All-CPU b=44", nv_all44)] {
            rows.push((
                format!("{label} {stage}"),
                vec![
                    r.avg_weight_transfer(stage, LayerKind::Mha).as_millis(),
                    r.avg_weight_transfer(stage, LayerKind::Ffn).as_millis(),
                    r.avg_compute(stage, LayerKind::Mha).as_millis(),
                    r.avg_compute(stage, LayerKind::Ffn).as_millis(),
                ],
            ));
        }
    }
    print_table(
        &[
            "config/stage",
            "MHA-l(ms)",
            "FFN-l(ms)",
            "MHA-c(ms)",
            "FFN-c(ms)",
        ],
        &rows,
    );

    section("Fig 12: paper claims");
    print_comparisons(&[
        Comparison::new(
            "All-CPU b=8 vs baseline b=8 throughput (NVDIMM)",
            5.0,
            (nv_all8.throughput_tps() / nv_base8.throughput_tps() - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "All-CPU b=8 TBT degradation (NVDIMM)",
            1.0,
            (nv_all8.tbt_ms() / nv_base8.tbt_ms() - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "All-CPU b=44 / baseline b=8 throughput (NVDIMM)",
            5.0,
            nv_all44.throughput_tps() / nv_base8.throughput_tps(),
            "x",
        ),
        Comparison::new(
            "All-CPU NVDIMM b=44 within of All-CPU DRAM",
            6.0,
            (1.0 - nv_all44.throughput_tps() / dram_all44.throughput_tps()) * 100.0,
            "%",
        ),
        Comparison::new(
            "All-CPU MM b=44 throughput gain over NVDIMM",
            7.57,
            (mm_all44.throughput_tps() / nv_all44.throughput_tps() - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "decode compute flat from b=8 to b=44 (FFN)",
            0.0,
            (nv_all44
                .avg_compute(Stage::Decode, LayerKind::Ffn)
                .as_secs()
                / nv_base8
                    .avg_compute(Stage::Decode, LayerKind::Ffn)
                    .as_secs()
                - 1.0)
                * 100.0,
            "%",
        ),
    ]);
    Ok(())
}
