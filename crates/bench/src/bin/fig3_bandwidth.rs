//! Figure 3: host/GPU memory-copy bandwidth for buffer sizes from
//! 256 MB to 32 GB under DRAM, NVDRAM, and Memory Mode on both NUMA
//! nodes (the `nvbandwidth` characterization).

use bench::{print_comparisons, section, Comparison};
use xfer::nvbandwidth::{sweep, to_table, SweepMemory};
use xfer::path::{Direction, PathModel};

fn find(
    points: &[xfer::nvbandwidth::SweepPoint],
    memory: SweepMemory,
    node: usize,
    direction: Direction,
    buffer_gb: f64,
) -> Result<f64, String> {
    points
        .iter()
        .find(|p| {
            p.memory == memory
                && p.node == node
                && p.direction == direction
                && (p.buffer.as_gb() - buffer_gb).abs() < 1e-6
        })
        .map(|p| p.gbps)
        .ok_or_else(|| format!("sweep point {memory:?}/{node}/{direction:?}/{buffer_gb} missing"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = sweep(&PathModel::paper_system());

    section("Fig 3a: host -> GPU bandwidth (GB/s)");
    print!("{}", to_table(&points, Direction::HostToGpu));

    section("Fig 3b: GPU -> host bandwidth (GB/s)");
    print!("{}", to_table(&points, Direction::GpuToHost));

    section("Fig 3: paper calibration points");
    let h2d = Direction::HostToGpu;
    let d2h = Direction::GpuToHost;
    let nv4 = find(&points, SweepMemory::NvDram, 0, h2d, 4.096)?;
    let nv32 = find(&points, SweepMemory::NvDram, 0, h2d, 32.768)?;
    let dram4 = find(&points, SweepMemory::Dram, 0, h2d, 4.096)?;
    let dram32 = find(&points, SweepMemory::Dram, 0, h2d, 32.768)?;
    let nv_w = find(&points, SweepMemory::NvDram, 1, d2h, 1.024)?;
    let dram_w = find(&points, SweepMemory::Dram, 1, d2h, 1.024)?;
    let mm4 = find(&points, SweepMemory::MemoryMode, 0, h2d, 4.096)?;
    print_comparisons(&[
        Comparison::new("NVDRAM H2D at 4 GB", 19.91, nv4, "GB/s"),
        Comparison::new("NVDRAM H2D at 32 GB", 15.52, nv32, "GB/s"),
        Comparison::new(
            "NVDRAM H2D deficit vs DRAM at 4 GB",
            20.0,
            (1.0 - nv4 / dram4) * 100.0,
            "%",
        ),
        Comparison::new(
            "NVDRAM H2D deficit vs DRAM at 32 GB",
            37.0,
            (1.0 - nv32 / dram32) * 100.0,
            "%",
        ),
        Comparison::new("NVDRAM D2H peak (node 1, 1 GB)", 3.26, nv_w, "GB/s"),
        Comparison::new(
            "NVDRAM D2H deficit vs DRAM",
            88.0,
            (1.0 - nv_w / dram_w) * 100.0,
            "%",
        ),
        Comparison::new(
            "MM H2D tracks DRAM at 4 GB",
            0.0,
            (mm4 / dram4 - 1.0) * 100.0,
            "%",
        ),
    ]);
    Ok(())
}
