//! Figure 7: (a) per-layer weight load latency for the first 70 of
//! 194 OPT-175B layers — the baseline allocator's sawtooth — and
//! (b/c) the achieved MHA/FFN weight distributions under SSD/FSDAX
//! and NVDRAM/MemoryMode configurations.

use bench::{print_comparisons, print_table, run_serving, section, Comparison};
use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::Policy;
use hetmem::{HostMemoryConfig, MemoryConfigKind};
use llm::layers::LayerKind;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();

    section("Fig 7a: per-layer load latency, NVDRAM compressed (first 24 of 194)");
    let report = run_serving(
        model.clone(),
        HostMemoryConfig::nvdram(),
        PlacementKind::Baseline,
        true,
        1,
        &WorkloadSpec::paper_default(),
    )?;
    println!("{:>6} {:>12}", "layer", "load(ms)");
    for (layer, load) in report.decode_load_profile().into_iter().take(24) {
        let bar = "#".repeat((load.as_millis() * 1.2) as usize);
        println!("{layer:>6} {:>12.2}  {bar}", load.as_millis());
    }

    for (title, memory, expected_overall) in [
        (
            "Fig 7b: SSD/FSDAX (input 65/15/20)",
            MemoryConfigKind::Ssd,
            [58.6, 33.1, 8.3],
        ),
        (
            "Fig 7c: NVDRAM/MemoryMode (input 0/80/20)",
            MemoryConfigKind::NvDram,
            [0.0, 91.7, 8.3],
        ),
    ] {
        section(title);
        let policy = Policy::paper_default(&model, memory);
        let placement = ModelPlacement::compute(&model, &policy);
        let mha = placement.distribution_for_kind(LayerKind::Mha);
        let ffn = placement.distribution_for_kind(LayerKind::Ffn);
        print_table(
            &["layer kind", "disk %", "cpu %", "gpu %"],
            &[
                ("MHA".to_owned(), mha.to_vec()),
                ("FFN".to_owned(), ffn.to_vec()),
            ],
        );
        let achieved = placement.achieved_distribution();
        print_comparisons(&[
            Comparison::new("achieved disk share", expected_overall[0], achieved[0], "%"),
            Comparison::new("achieved cpu share", expected_overall[1], achieved[1], "%"),
            Comparison::new("achieved gpu share", expected_overall[2], achieved[2], "%"),
        ]);
    }

    section("Fig 7a: sawtooth magnitude");
    let profile = report.decode_load_profile();
    let hidden: Vec<f64> = profile
        .iter()
        .skip(1)
        .take(40)
        .map(|(_, d)| d.as_millis())
        .collect();
    let max = hidden.iter().cloned().fold(0.0, f64::max);
    let min = hidden.iter().cloned().fold(f64::INFINITY, f64::min);
    print_comparisons(&[Comparison::new(
        "FFN-ridge / MHA-dip load ratio",
        2.7,
        max / min,
        "x",
    )]);
    Ok(())
}
