//! Figure 11: HeLM's impact on (a) compute/communication overlap
//! during decode and (b) TTFT/TBT, for OPT-175B at batch 1 with
//! compression, on NVDRAM and MemoryMode versus the DRAM reference.

use bench::{print_comparisons, print_table, run_serving, section, Comparison};
use helm_core::metrics::{RunReport, Stage};
use helm_core::placement::PlacementKind;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn run(
    memory: HostMemoryConfig,
    placement: PlacementKind,
) -> Result<RunReport, helm_core::HelmError> {
    run_serving(
        ModelConfig::opt_175b(),
        memory,
        placement,
        true,
        1,
        &WorkloadSpec::paper_default(),
    )
}

fn main() -> Result<(), helm_core::HelmError> {
    let nv_base = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline)?;
    let nv_helm = run(HostMemoryConfig::nvdram(), PlacementKind::Helm)?;
    let mm_base = run(HostMemoryConfig::memory_mode(), PlacementKind::Baseline)?;
    let mm_helm = run(HostMemoryConfig::memory_mode(), PlacementKind::Helm)?;
    let dram_helm = run(HostMemoryConfig::dram(), PlacementKind::Helm)?;
    let dram_base = run(HostMemoryConfig::dram(), PlacementKind::Baseline)?;

    section("Fig 11a: decode overlap, NVDRAM (c), batch 1");
    let stage = Stage::Decode;
    let rows: Vec<(String, Vec<f64>)> = [("Baseline", &nv_base), ("HeLM", &nv_helm)]
        .iter()
        .map(|(label, r)| {
            (
                label.to_string(),
                vec![
                    r.avg_weight_transfer(stage, LayerKind::Mha).as_millis(),
                    r.avg_weight_transfer(stage, LayerKind::Ffn).as_millis(),
                    r.avg_compute(stage, LayerKind::Mha).as_millis(),
                    r.avg_compute(stage, LayerKind::Ffn).as_millis(),
                ],
            )
        })
        .collect();
    print_table(
        &["policy", "MHA-l(ms)", "FFN-l(ms)", "MHA-c(ms)", "FFN-c(ms)"],
        &rows,
    );

    section("Fig 11b: TTFT and TBT");
    let rows: Vec<(String, Vec<f64>)> = [
        ("NVDRAM baseline", &nv_base),
        ("NVDRAM HeLM", &nv_helm),
        ("MemoryMode baseline", &mm_base),
        ("MemoryMode HeLM", &mm_helm),
        ("DRAM baseline", &dram_base),
        ("DRAM HeLM", &dram_helm),
    ]
    .iter()
    .map(|(label, r)| (label.to_string(), vec![r.ttft_ms(), r.tbt_ms()]))
    .collect();
    print_table(&["config", "TTFT(ms)", "TBT(ms)"], &rows);

    section("Fig 11: paper claims");
    let xfer = |r: &RunReport, k| r.avg_weight_transfer(stage, k).as_millis();
    print_comparisons(&[
        Comparison::new(
            "FFN transfer time reduction",
            49.33,
            (1.0 - xfer(&nv_helm, LayerKind::Ffn) / xfer(&nv_base, LayerKind::Ffn)) * 100.0,
            "%",
        ),
        Comparison::new(
            "MHA transfer time increase",
            32.55,
            (xfer(&nv_helm, LayerKind::Mha) / xfer(&nv_base, LayerKind::Mha) - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "HeLM TTFT improvement on NVDRAM",
            27.20,
            (1.0 - nv_helm.ttft_ms() / nv_base.ttft_ms()) * 100.0,
            "%",
        ),
        Comparison::new(
            "HeLM TBT improvement on NVDRAM",
            27.44,
            (1.0 - nv_helm.tbt_ms() / nv_base.tbt_ms()) * 100.0,
            "%",
        ),
        Comparison::new(
            "HeLM NVDRAM TTFT within of DRAM",
            8.75,
            (nv_helm.ttft_ms() / dram_helm.ttft_ms() - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "HeLM NVDRAM TBT within of DRAM",
            8.91,
            (nv_helm.tbt_ms() / dram_helm.tbt_ms() - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "HeLM TTFT improvement on MemoryMode",
            31.90,
            (1.0 - mm_helm.ttft_ms() / mm_base.ttft_ms()) * 100.0,
            "%",
        ),
        Comparison::new(
            "HeLM MM TBT within of DRAM",
            1.64,
            (mm_helm.tbt_ms() / dram_helm.tbt_ms() - 1.0) * 100.0,
            "%",
        ),
    ]);
    Ok(())
}
