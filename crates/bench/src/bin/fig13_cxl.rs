//! Figure 13: projected improvements from HeLM (batch 1) and All-CPU
//! on CXL-based systems serving OPT-175B.

use bench::{print_comparisons, print_table, section, Comparison};
use helm_core::projection::{fig13_allcpu_throughput, fig13_helm_gains};
use workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ws = WorkloadSpec::paper_default();

    section("Fig 13a: HeLM TTFT/TBT improvement over baseline (batch 1)");
    let gains = fig13_helm_gains(&ws)?;
    let rows: Vec<(String, Vec<f64>)> = gains
        .iter()
        .map(|(label, ttft, tbt)| (label.clone(), vec![ttft * 100.0, tbt * 100.0]))
        .collect();
    print_table(&["config", "TTFT gain %", "TBT gain %"], &rows);

    section("Fig 13b: All-CPU throughput (tokens/s)");
    let tps = fig13_allcpu_throughput(&ws)?;
    let rows: Vec<(String, Vec<f64>)> = tps
        .iter()
        .map(|(label, b8, a8, a44)| (label.clone(), vec![*b8, *a8, *a44]))
        .collect();
    print_table(
        &["config", "baseline b=8", "All-CPU b=8", "All-CPU b=44"],
        &rows,
    );

    section("Fig 13 / SS V-D: paper claims");
    let find_gain = |name: &str| {
        gains
            .iter()
            .find(|(l, _, _)| l == name)
            .ok_or_else(|| format!("gain row {name:?} missing"))
    };
    let find_tps = |name: &str| {
        tps.iter()
            .find(|(l, _, _, _)| l == name)
            .ok_or_else(|| format!("throughput row {name:?} missing"))
    };
    let (_, fpga_ttft, _) = find_gain("CXL-FPGA")?;
    let (_, asic_ttft, _) = find_gain("CXL-ASIC")?;
    let (_, fpga_b8, fpga_all8, fpga_44) = find_tps("CXL-FPGA")?;
    let (_, asic_b8, _, asic_44) = find_tps("CXL-ASIC")?;
    print_comparisons(&[
        Comparison::new("HeLM TTFT gain, CXL-FPGA", 27.0, fpga_ttft * 100.0, "%"),
        Comparison::new("HeLM TTFT gain, CXL-ASIC", 21.0, asic_ttft * 100.0, "%"),
        Comparison::new(
            "All-CPU b=8 drop on CXL-FPGA",
            -8.35,
            (fpga_all8 / fpga_b8 - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "All-CPU 44/baseline 8, CXL-FPGA",
            4.74,
            fpga_44 / fpga_b8,
            "x",
        ),
        Comparison::new(
            "All-CPU 44/baseline 8, CXL-ASIC",
            5.04,
            asic_44 / asic_b8,
            "x",
        ),
    ]);
    Ok(())
}
