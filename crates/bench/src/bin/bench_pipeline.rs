//! Microbenchmark for the pipeline hot loop: steps/sec of the seed
//! evaluator (per-step recomputation, full records) versus the
//! cost-table fast path in `RecordMode::Full` and the allocation-free
//! `RecordMode::Aggregate` the autoplace engine and online calibration
//! run on. The fast-path timings *include* `LayerCostTable::build` on
//! every call — the table is rebuilt per candidate in real use, so
//! amortization is not assumed.
//!
//! Also replays the seed's serial coarse placement sweep twice — once
//! on the seed evaluator, once on table + Aggregate — to report the
//! end-to-end wall-clock win a search pass sees, and to check the
//! winner is bit-identical.
//!
//! Results land in `output/BENCH_pipeline.json`. `--quick` shrinks the
//! iteration counts for CI smoke runs.

use std::time::Instant;

use bench::{print_table, section};
use helm_core::exec::{
    run_pipeline_reference, run_pipeline_with, LayerCostTable, PipelineInputs, RecordMode,
};
use helm_core::placement::{ModelPlacement, Tier};
use helm_core::policy::Policy;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

/// One timed variant: evaluates `inp` `iters` times, returns
/// `(steps_per_sec, total_steps_per_run)`.
fn time_variant<F>(
    inp: &PipelineInputs<'_>,
    iters: usize,
    mut eval: F,
) -> Result<(f64, usize), helm_core::HelmError>
where
    F: FnMut(&PipelineInputs<'_>) -> Result<usize, helm_core::HelmError>,
{
    // Warm up once so lazy platform state and allocator pools don't
    // bill the first timed iteration.
    let steps_per_run = eval(inp)?;
    let started = Instant::now();
    for _ in 0..iters {
        let steps = eval(inp)?;
        assert_eq!(steps, steps_per_run, "step count drifted across runs");
    }
    let elapsed = started.elapsed().as_secs_f64();
    Ok(((steps_per_run * iters) as f64 / elapsed, steps_per_run))
}

/// The seed's serial coarse sweep over the 10% placement grid, costed
/// by `eval`. Returns `(wall_ms, evaluated, best_tbt_ms_bits)`.
fn coarse_sweep<F>(
    system: &SystemConfig,
    model: &ModelConfig,
    policy: &Policy,
    workload: &WorkloadSpec,
    mut eval: F,
) -> Result<(f64, usize, u64), helm_core::HelmError>
where
    F: FnMut(&PipelineInputs<'_>) -> Result<f64, helm_core::HelmError>,
{
    let budget = gpusim::MemoryBudget::for_gpu(system.gpu());
    let started = Instant::now();
    let mut evaluated = 0usize;
    let mut best_tbt = f64::INFINITY;
    for mha in (0..=100u32).step_by(10) {
        for ffn in (0..=100u32).step_by(10) {
            let placement = ModelPlacement::compute_custom(
                model,
                policy.compressed(),
                [f64::from(mha), f64::from(100 - mha), 0.0],
                [f64::from(ffn), f64::from(100 - ffn), 0.0],
                [0.0, 100.0, 0.0],
            );
            if placement.total_on(Tier::Cpu) > system.tier_capacity(Tier::Cpu) {
                continue;
            }
            let costs = gpusim::ResidentCosts {
                weights: placement.total_on(Tier::Gpu),
                staging: placement.staging_bytes(),
                kv_per_sequence: llm::kv::kv_bytes_per_sequence(model, workload.context_len()),
                hidden_per_sequence: llm::kv::hidden_bytes_per_sequence(
                    model,
                    workload.context_len(),
                ),
            };
            if !budget.fits(&costs, policy.effective_batch()) {
                continue;
            }
            let tbt = eval(&PipelineInputs {
                system,
                model,
                policy,
                placement: &placement,
                workload,
            })?;
            evaluated += 1;
            if tbt < best_tbt {
                best_tbt = tbt;
            }
        }
    }
    Ok((
        started.elapsed().as_secs_f64() * 1000.0,
        evaluated,
        best_tbt.to_bits(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 4 } else { 60 };

    let model = ModelConfig::opt_30b();
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let policy = Policy::paper_default(&model, memory.kind())
        .with_compression(true)
        .with_batch_size(8);
    let placement = ModelPlacement::compute(&model, &policy);
    let workload = WorkloadSpec::paper_default();
    let inp = PipelineInputs {
        system: &system,
        model: &model,
        policy: &policy,
        placement: &placement,
        workload: &workload,
    };

    section(&format!(
        "pipeline hot loop: {} x {} iterations ({} layers x {} tokens/run)",
        model.name(),
        iters,
        model.num_layers(),
        workload.gen_len
    ));

    let (seed_sps, steps_per_run) = time_variant(&inp, iters, |inp| {
        Ok(run_pipeline_reference(inp)?.records.len())
    })?;
    let (full_sps, _) = time_variant(&inp, iters, |inp| {
        let table = LayerCostTable::build(inp)?;
        Ok(run_pipeline_with(inp, &table, RecordMode::Full)?
            .records
            .len())
    })?;
    let (agg_sps, _) = time_variant(&inp, iters, |inp| {
        let table = LayerCostTable::build(inp)?;
        Ok(run_pipeline_with(inp, &table, RecordMode::Aggregate)?
            .totals
            .steps)
    })?;

    let full_speedup = full_sps / seed_sps;
    let agg_speedup = agg_sps / seed_sps;
    print_table(
        &["variant", "steps/s", "speedup"],
        &[
            ("seed (full records)".to_owned(), vec![seed_sps, 1.0]),
            ("table + Full".to_owned(), vec![full_sps, full_speedup]),
            ("table + Aggregate".to_owned(), vec![agg_sps, agg_speedup]),
        ],
    );

    section("serial coarse placement sweep (seed evaluator vs table + Aggregate)");
    let (seed_ms, seed_evals, seed_best) =
        coarse_sweep(&system, &model, &policy, &workload, |inp| {
            Ok(run_pipeline_reference(inp)?.tbt_ms())
        })?;
    let (fast_ms, fast_evals, fast_best) =
        coarse_sweep(&system, &model, &policy, &workload, |inp| {
            let table = LayerCostTable::build(inp)?;
            Ok(run_pipeline_with(inp, &table, RecordMode::Aggregate)?.tbt_ms())
        })?;
    let winner_unchanged = seed_evals == fast_evals && seed_best == fast_best;
    let sweep_speedup = seed_ms / fast_ms;
    print_table(
        &["sweep", "wall(ms)", "evals", "best TBT(ms)"],
        &[
            (
                "seed evaluator".to_owned(),
                vec![seed_ms, seed_evals as f64, f64::from_bits(seed_best)],
            ),
            (
                "table + Aggregate".to_owned(),
                vec![fast_ms, fast_evals as f64, f64::from_bits(fast_best)],
            ),
        ],
    );
    println!("\nsweep speedup {sweep_speedup:.2}x, winner bit-identical: {winner_unchanged}");

    let json = format!(
        "{{\n  \"model\": \"{}\",\n  \"memory\": \"{}\",\n  \"quick\": {quick},\n  \
         \"iters\": {iters},\n  \"steps_per_run\": {steps_per_run},\n  \
         \"steps_per_sec\": {{\n    \"seed_full_records\": {seed_sps:.1},\n    \
         \"table_full\": {full_sps:.1},\n    \"table_aggregate\": {agg_sps:.1}\n  }},\n  \
         \"speedup_vs_seed\": {{\"table_full\": {full_speedup:.3}, \
         \"table_aggregate\": {agg_speedup:.3}}},\n  \
         \"coarse_sweep\": {{\n    \"seed_wall_ms\": {seed_ms:.3},\n    \
         \"fast_wall_ms\": {fast_ms:.3},\n    \"speedup\": {sweep_speedup:.3},\n    \
         \"evaluated\": {seed_evals},\n    \"winner_unchanged\": {winner_unchanged}\n  }}\n}}\n",
        model.name(),
        memory.kind(),
    );
    std::fs::create_dir_all("output")?;
    std::fs::write("output/BENCH_pipeline.json", &json)?;
    println!("wrote output/BENCH_pipeline.json");

    if !winner_unchanged {
        return Err("coarse-sweep winner diverged between evaluators".into());
    }
    Ok(())
}
