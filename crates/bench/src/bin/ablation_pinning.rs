//! Ablation: layer-granular pinning vs compute-aware splitting.
//!
//! A natural alternative to FlexGen-style per-tensor placement is to
//! treat GPU memory as an inclusive weight cache and pin whole layers
//! until it fills (the paper's §VI contrasts itself with exactly such
//! GPU-as-cache designs). At *equal GPU bytes*, pinning a prefix of
//! blocks concentrates all transfer savings in those blocks — the
//! rest of the model runs at full transfer cost — while HeLM spreads
//! the same bytes so that *every* block's transfer hides behind its
//! neighbor's compute. Pipelines care about the max per stage, not
//! the average: balance beats concentration.

use bench::{print_table, run_serving, section};
use helm_core::exec::{run_pipeline, PipelineInputs};
use helm_core::placement::{ModelPlacement, PlacementKind, Tier};
use helm_core::policy::Policy;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let workload = WorkloadSpec::paper_default();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_compression(true)
        .with_batch_size(1);

    // HeLM's GPU residency sets the byte budget to match.
    let helm = ModelPlacement::compute(&model, &policy.clone().with_placement(PlacementKind::Helm));
    let budget = helm.total_on(Tier::Gpu);
    // Find the pinned-prefix count with the closest GPU residency.
    let mut pinned_blocks = 0;
    for k in 0..=model.num_blocks() {
        let p = ModelPlacement::compute_pinned_prefix(&model, true, k);
        if p.total_on(Tier::Gpu) > budget {
            break;
        }
        pinned_blocks = k;
    }
    let pinned = ModelPlacement::compute_pinned_prefix(&model, true, pinned_blocks);

    section("equal-GPU-byte placements");
    print_table(
        &["placement", "GPU bytes (GB)", "host bytes (GB)"],
        &[
            (
                format!(
                    "HeLM (FC1 + small tensors, all {} blocks)",
                    model.num_blocks()
                ),
                vec![
                    helm.total_on(Tier::Gpu).as_gb(),
                    helm.total_on(Tier::Cpu).as_gb(),
                ],
            ),
            (
                format!("pinned prefix ({pinned_blocks} whole blocks)"),
                vec![
                    pinned.total_on(Tier::Gpu).as_gb(),
                    pinned.total_on(Tier::Cpu).as_gb(),
                ],
            ),
        ],
    );

    section("serving OPT-175B (compressed, NVDRAM, batch 1)");
    let run = |placement: &ModelPlacement| {
        run_pipeline(&PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement,
            workload: &workload,
        })
    };
    let baseline = run_serving(
        model.clone(),
        memory,
        PlacementKind::Baseline,
        true,
        1,
        &workload,
    )?;
    let helm_run = run(&helm)?;
    let pinned_run = run(&pinned)?;
    print_table(
        &["placement", "TTFT(ms)", "TBT(ms)"],
        &[
            (
                "baseline (percent split)".to_owned(),
                vec![baseline.ttft_ms(), baseline.tbt_ms()],
            ),
            (
                "pinned prefix".to_owned(),
                vec![pinned_run.ttft_ms(), pinned_run.tbt_ms()],
            ),
            (
                "HeLM".to_owned(),
                vec![helm_run.ttft_ms(), helm_run.tbt_ms()],
            ),
        ],
    );
    let gap = pinned_run.tbt_ms() / helm_run.tbt_ms();
    println!(
        "\nReading: with identical GPU bytes, whole-layer pinning is {gap:.2}x\n\
         slower than HeLM. The pinned prefix runs compute-bound while the\n\
         unpinned suffix pays full transfer cost on every block; HeLM\n\
         spends the same bytes equalizing compute with communication in\n\
         every block -- the paper's central placement insight."
    );
    Ok(())
}
