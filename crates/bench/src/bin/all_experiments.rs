//! Runs every table/figure harness in sequence — the one-shot
//! regeneration of the paper's evaluation section.

use std::process::Command;

const BINS: &[&str] = &[
    // The paper's tables and figures.
    "table1_system",
    "table2_configs",
    "table3_cxl",
    "fig3_bandwidth",
    "fig4_llm_perf",
    "fig5_overlap",
    "fig6_compression",
    "fig7_placement",
    "fig8_mha_ffn",
    "fig10_helm_dist",
    "fig11_helm",
    "fig12_allcpu",
    "fig13_cxl",
    "table4_overlap",
    // Extensions beyond the paper (ablations / future work).
    "ablation_autoplace",
    "ablation_kv_offload",
    "ablation_numa",
    "ablation_pinning",
    "ablation_sweeps",
    "ablation_tiering",
    "energy_efficiency",
    "generalization_models",
    "online_serving",
    "platform_sensitivity",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exe = std::env::current_exe()?;
    let dir = exe.parent().ok_or("executable has no parent directory")?;
    let mut failures = Vec::new();
    for bin in BINS {
        println!();
        println!("########################################################");
        println!("# {bin}");
        println!("########################################################");
        let status = Command::new(dir.join(bin)).status().map_err(|e| {
            format!(
                "failed to spawn {bin}: {e}\n\
                 (build all harnesses first: cargo build -p bench --release --bins)"
            )
        })?;
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!();
    if failures.is_empty() {
        println!("All {} experiment harnesses completed.", BINS.len());
        Ok(())
    } else {
        Err(format!("FAILED harnesses: {failures:?}").into())
    }
}
