//! Table III: the CXL configurations borrowed from prior work, as
//! realized by the device models.

use bench::{print_comparisons, section, Comparison};
use hetmem::cxl::CxlDevice;
use hetmem::{AccessProfile, MemoryDevice};
use simcore::units::ByteSize;

fn main() {
    section("Table III: CXL configurations");
    let probe = AccessProfile::sequential_read(ByteSize::from_gb(1.0));
    let fpga = CxlDevice::fpga_ddr4();
    let asic = CxlDevice::asic_ddr5();
    println!("{:<12} {:<16} {:>16}", "name", "memory", "bandwidth");
    for dev in [&fpga, &asic] {
        println!(
            "{:<12} {:<16} {:>16}",
            if dev.name().contains("FPGA") {
                "CXL-FPGA"
            } else {
                "CXL-ASIC"
            },
            dev.media(),
            dev.bandwidth(&probe).to_string(),
        );
    }
    print_comparisons(&[
        Comparison::new(
            "CXL-FPGA bandwidth (Sun et al., CXL-C)",
            5.12,
            fpga.bandwidth(&probe).as_gb_per_s(),
            "GB/s",
        ),
        Comparison::new(
            "CXL-ASIC bandwidth (Wang et al., System A)",
            28.0,
            asic.bandwidth(&probe).as_gb_per_s(),
            "GB/s",
        ),
    ]);
    println!(
        "\nAdded round-trip latency of the CXL hop: >= {} ns (SS II-D)",
        hetmem::cxl::CXL_ADDED_LATENCY.as_nanos()
    );
}
