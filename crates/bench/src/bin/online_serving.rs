//! Extension: online serving under Poisson load — the QoS view of the
//! latency/throughput dial the paper's §VII asks for.
//!
//! For each placement policy, sweep the arrival rate and report p95
//! end-to-end latency and sustained throughput. HeLM owns the
//! low-load/latency-sensitive regime; All-CPU's batch-44 pipeline
//! sustains arrival rates that drive the batch-8 baseline into
//! unbounded queueing.

use bench::{print_table, section};
use helm_core::online::{run_online, PoissonArrivals};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::SimDuration;
use workload::WorkloadSpec;

fn server(placement: PlacementKind, batch: u32) -> Result<Server, helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
}

fn main() -> Result<(), helm_core::HelmError> {
    let ws = WorkloadSpec::paper_default();
    let n = 120;

    for (label, placement, batch) in [
        ("Baseline b=8", PlacementKind::Baseline, 8u32),
        ("HeLM b=8", PlacementKind::Helm, 8),
        ("All-CPU b=44", PlacementKind::AllCpu, 44),
    ] {
        section(&format!(
            "{label} under Poisson load (OPT-175B, NVDRAM, compressed)"
        ));
        let s = server(placement, batch)?;
        let mut rows = Vec::new();
        for lambda in [0.01f64, 0.03, 0.06, 0.10, 0.15, 0.25] {
            let mut arrivals = PoissonArrivals::new(lambda, 42);
            let r = run_online(&s, &ws, &mut arrivals, n)?;
            rows.push((
                format!("{lambda:.2} req/s"),
                vec![
                    SimDuration::from_millis(r.mean_queue_delay_ms()).as_secs(),
                    SimDuration::from_millis(r.e2e_percentile_ms(50.0)).as_secs(),
                    SimDuration::from_millis(r.e2e_percentile_ms(95.0)).as_secs(),
                    r.tokens_per_s,
                    r.utilization,
                ],
            ));
        }
        print_table(
            &[
                "arrival rate",
                "queue(s)",
                "p50 e2e(s)",
                "p95 e2e(s)",
                "tok/s",
                "util",
            ],
            &rows,
        );
    }
    println!(
        "\nReading: at 0.01-0.03 req/s the HeLM server's faster pipeline gives\n\
         the best end-to-end latency; past ~0.06 req/s the batch-8 servers\n\
         saturate (utilization -> 1, queues grow without bound over the\n\
         window) while All-CPU b=44 keeps absorbing load -- the same\n\
         latency/throughput dial as the paper's two placement schemes,\n\
         expressed as serving QoS."
    );
    Ok(())
}
