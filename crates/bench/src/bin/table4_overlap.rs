//! Table IV: compute/communication overlap ratios under NVDRAM and
//! the two CXL configurations for all three placement policies,
//! OPT-175B with compression. Ratios below 1 are memory-bound, above
//! 1 compute-bound.

use bench::{print_comparisons, section, Comparison};
use helm_core::metrics::Stage;
use helm_core::placement::PlacementKind;
use helm_core::projection::{table_iv, OverlapRow};
use workload::WorkloadSpec;

/// The paper's Table IV, row-major:
/// (policy, batch, stage, [nv_mha_ffn, fpga, asic, nv_ffn_mha, fpga, asic]).
const PAPER: &[(&str, u32, &str, [f64; 6])] = &[
    (
        "Baseline",
        1,
        "prefill",
        [0.36, 0.10, 0.56, 1.86, 0.53, 2.90],
    ),
    (
        "Baseline",
        1,
        "decode",
        [0.36, 0.10, 0.55, 1.85, 0.53, 2.88],
    ),
    (
        "Baseline",
        8,
        "prefill",
        [0.52, 0.14, 0.79, 3.07, 0.87, 4.77],
    ),
    (
        "Baseline",
        8,
        "decode",
        [0.36, 0.10, 0.55, 1.85, 0.53, 2.88],
    ),
    ("HeLM", 1, "prefill", [0.72, 0.20, 1.12, 1.40, 0.40, 2.18]),
    ("HeLM", 1, "decode", [0.71, 0.20, 1.10, 1.40, 0.40, 2.16]),
    ("HeLM", 8, "prefill", [0.37, 0.10, 0.56, 1.41, 0.40, 2.18]),
    ("HeLM", 8, "decode", [0.36, 0.10, 0.55, 1.39, 0.39, 2.16]),
    (
        "All-CPU",
        44,
        "prefill",
        [1.25, 0.37, 2.01, 4.82, 1.43, 7.84],
    ),
    (
        "All-CPU",
        44,
        "decode",
        [0.35, 0.10, 0.57, 1.33, 0.40, 2.16],
    ),
];

fn cell<'a>(
    rows: &'a [OverlapRow],
    policy: PlacementKind,
    batch: u32,
    stage: Stage,
    config: &str,
) -> Result<&'a OverlapRow, String> {
    rows.iter()
        .find(|r| r.policy == policy && r.batch == batch && r.stage == stage && r.config == config)
        .ok_or_else(|| format!("cell {policy:?} b={batch} {stage} {config:?} missing"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = table_iv(&WorkloadSpec::paper_default())?;

    section("Table IV: MHA-compute/FFN-load and FFN-compute/MHA-load ratios");
    println!(
        "{:<10} {:>5} {:<8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "policy", "batch", "stage", "NV m/f", "FPGA", "ASIC", "NV f/m", "FPGA", "ASIC"
    );
    let mut comparisons = Vec::new();
    for &(policy_name, batch, stage_name, paper) in PAPER {
        let policy = match policy_name {
            "Baseline" => PlacementKind::Baseline,
            "HeLM" => PlacementKind::Helm,
            _ => PlacementKind::AllCpu,
        };
        let stage = if stage_name == "prefill" {
            Stage::Prefill
        } else {
            Stage::Decode
        };
        let mut ours = [0.0f64; 6];
        for (i, config) in ["NVDRAM", "CXL-FPGA", "CXL-ASIC"].iter().enumerate() {
            let c = cell(&rows, policy, batch, stage, config)?;
            ours[i] = c.mha_compute_over_ffn_load;
            ours[i + 3] = c.ffn_compute_over_mha_load;
        }
        println!(
            "{policy_name:<10} {batch:>5} {stage_name:<8} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
            ours[0], ours[1], ours[2], ours[3], ours[4], ours[5]
        );
        for (i, label) in [
            "NV mha/ffn",
            "FPGA mha/ffn",
            "ASIC mha/ffn",
            "NV ffn/mha",
            "FPGA ffn/mha",
            "ASIC ffn/mha",
        ]
        .iter()
        .enumerate()
        {
            comparisons.push(Comparison::new(
                format!("{policy_name} b={batch} {stage_name} {label}"),
                paper[i],
                ours[i],
                "x",
            ));
        }
    }

    section("Table IV: paper-vs-measured, every cell");
    print_comparisons(&comparisons);
    let within = comparisons.iter().filter(|c| c.within(0.35)).count();
    println!(
        "\n{}/{} cells within 35% of the paper's ratio",
        within,
        comparisons.len()
    );
    Ok(())
}
