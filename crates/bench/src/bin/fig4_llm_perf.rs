//! Figure 4: TTFT, TBT, and throughput for OPT-30B (batch 1 and 32)
//! and OPT-175B (batch 1 and 8) across the Table II memory
//! configurations, uncompressed.

use bench::{print_comparisons, print_table, run_serving, section, Comparison};
use helm_core::metrics::RunReport;
use helm_core::placement::PlacementKind;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn run(
    model: ModelConfig,
    memory: HostMemoryConfig,
    batch: u32,
) -> Result<RunReport, helm_core::HelmError> {
    run_serving(
        model,
        memory,
        PlacementKind::Baseline,
        false,
        batch,
        &WorkloadSpec::paper_default(),
    )
}

fn block(
    model: ModelConfig,
    configs: Vec<HostMemoryConfig>,
    batches: [u32; 2],
) -> Result<Vec<RunReport>, helm_core::HelmError> {
    let mut out = Vec::new();
    for batch in batches {
        for cfg in &configs {
            out.push(run(model.clone(), cfg.clone(), batch)?);
        }
    }
    Ok(out)
}

fn print_block(title: &str, reports: &[RunReport]) {
    section(title);
    let rows: Vec<(String, Vec<f64>)> = reports
        .iter()
        .map(|r| {
            (
                format!("{} b={}", r.config, r.batch),
                vec![r.ttft_ms(), r.tbt_ms(), r.throughput_tps()],
            )
        })
        .collect();
    print_table(&["config", "TTFT(ms)", "TBT(ms)", "tok/s"], &rows);
}

fn get<'a>(reports: &'a [RunReport], config: &str, batch: u32) -> Result<&'a RunReport, String> {
    reports
        .iter()
        .find(|r| r.config == config && r.batch == batch)
        .ok_or_else(|| format!("report {config:?} b={batch} missing"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m30 = ModelConfig::opt_30b();
    let m175 = ModelConfig::opt_175b();

    let r30 = block(m30, HostMemoryConfig::opt30b_set(), [1, 32])?;
    print_block("Fig 4a/4c/4e: OPT-30B", &r30);

    let r175 = block(m175, HostMemoryConfig::opt175b_set(), [1, 8])?;
    print_block("Fig 4b/4d/4f: OPT-175B", &r175);

    section("Fig 4: paper claims (OPT-30B, NVDRAM vs DRAM)");
    let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
    let d1 = get(&r30, "DRAM", 1)?;
    let n1 = get(&r30, "NVDRAM", 1)?;
    let d32 = get(&r30, "DRAM", 32)?;
    let n32 = get(&r30, "NVDRAM", 32)?;
    let mm32 = get(&r30, "MemoryMode", 32)?;
    print_comparisons(&[
        Comparison::new(
            "TTFT increase b=1",
            33.03,
            pct(n1.ttft_ms(), d1.ttft_ms()),
            "%",
        ),
        Comparison::new(
            "TTFT increase b=32",
            15.05,
            pct(n32.ttft_ms(), d32.ttft_ms()),
            "%",
        ),
        Comparison::new(
            "TBT increase b=1",
            33.03,
            pct(n1.tbt_ms(), d1.tbt_ms()),
            "%",
        ),
        Comparison::new(
            "TBT increase b=32",
            30.55,
            pct(n32.tbt_ms(), d32.tbt_ms()),
            "%",
        ),
        Comparison::new(
            "throughput drop b=1",
            -18.96,
            pct(n1.throughput_tps(), d1.throughput_tps()),
            "%",
        ),
        Comparison::new(
            "throughput drop b=32",
            -22.68,
            pct(n32.throughput_tps(), d32.throughput_tps()),
            "%",
        ),
        Comparison::new(
            "MemoryMode matches DRAM (TBT, b=32)",
            0.0,
            pct(mm32.tbt_ms(), d32.tbt_ms()),
            "%",
        ),
    ]);

    section("Fig 4: paper claims (OPT-175B)");
    let ssd1 = get(&r175, "SSD", 1)?;
    let dax1 = get(&r175, "FSDAX", 1)?;
    let ssd8 = get(&r175, "SSD", 8)?;
    let dax8 = get(&r175, "FSDAX", 8)?;
    let nv1 = get(&r175, "NVDRAM", 1)?;
    let mm1 = get(&r175, "MemoryMode", 1)?;
    let nv8 = get(&r175, "NVDRAM", 8)?;
    let mm8 = get(&r175, "MemoryMode", 8)?;
    print_comparisons(&[
        Comparison::new(
            "FSDAX TTFT improvement over SSD b=1",
            33.46,
            (1.0 - dax1.ttft_ms() / ssd1.ttft_ms()) * 100.0,
            "%",
        ),
        Comparison::new(
            "FSDAX TBT improvement over SSD b=8",
            33.58,
            (1.0 - dax8.tbt_ms() / ssd8.tbt_ms()) * 100.0,
            "%",
        ),
        Comparison::new(
            "FSDAX throughput gain over SSD b=8",
            46.68,
            (dax8.throughput_tps() / ssd8.throughput_tps() - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "MM TTFT improvement over NVDRAM b=1",
            7.67,
            (1.0 - mm1.ttft_ms() / nv1.ttft_ms()) * 100.0,
            "%",
        ),
        Comparison::new(
            "MM TBT improvement over NVDRAM b=8",
            8.92,
            (1.0 - mm8.tbt_ms() / nv8.tbt_ms()) * 100.0,
            "%",
        ),
        Comparison::new(
            "MM throughput gain over NVDRAM b=8",
            7.98,
            (mm8.throughput_tps() / nv8.throughput_tps() - 1.0) * 100.0,
            "%",
        ),
        Comparison::new(
            "FSDAX below NVDRAM (TBT b=1, sign check)",
            100.0 * (1.0f64),
            if dax1.tbt_ms() > nv1.tbt_ms() {
                100.0
            } else {
                0.0
            },
            "%",
        ),
    ]);

    section("Fig 4e/4f: near-linear throughput scaling with batch");
    print_comparisons(&[
        Comparison::new(
            "OPT-30B DRAM b=32 / b=1 throughput",
            26.0,
            d32.throughput_tps() / d1.throughput_tps(),
            "x",
        ),
        Comparison::new(
            "OPT-175B NVDRAM b=8 / b=1 throughput",
            7.6,
            nv8.throughput_tps() / nv1.throughput_tps(),
            "x",
        ),
    ]);
    Ok(())
}
