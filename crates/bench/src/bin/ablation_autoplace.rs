//! Ablation: automatic placement search (the paper's §VII future-work
//! direction) versus the hand-built policies, per memory
//! configuration. Validates that HeLM's hand-picked 10%/30% GPU
//! shares sit at (or next to) the latency optimum, and that the
//! throughput optimum rediscovers All-CPU.

use bench::{print_table, section};
use helm_core::autoplace::{optimize, Objective};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();

    for memory in [
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::cxl_fpga(),
        HostMemoryConfig::cxl_asic(),
    ] {
        let system = SystemConfig::paper_platform(memory.clone());
        let policy = Policy::paper_default(&model, memory.kind())
            .with_compression(true)
            .with_batch_size(1);

        section(&format!("latency objective on {}", memory.kind()));
        let mut rows = Vec::new();
        for kind in [PlacementKind::Baseline, PlacementKind::Helm] {
            let report = Server::new(
                system.clone(),
                model.clone(),
                policy.clone().with_placement(kind),
            )
            .expect("fits")
            .run(&workload)
            .expect("serves");
            rows.push((kind.to_string(), vec![report.tbt_ms(), f64::NAN, f64::NAN]));
        }
        let auto = optimize(&system, &model, &policy, &workload, Objective::Latency)
            .expect("search succeeds");
        rows.push((
            format!("auto ({} cands)", auto.evaluated),
            vec![
                auto.report.tbt_ms(),
                auto.mha_gpu_percent,
                auto.ffn_gpu_percent,
            ],
        ));
        print_table(&["policy", "TBT(ms)", "MHA gpu%", "FFN gpu%"], &rows);

        section(&format!("throughput objective on {}", memory.kind()));
        let allcpu = Server::new(
            system.clone(),
            model.clone(),
            policy
                .clone()
                .with_placement(PlacementKind::AllCpu)
                .with_batch_size(44),
        )
        .expect("fits")
        .run(&workload)
        .expect("serves");
        let auto_t = optimize(&system, &model, &policy, &workload, Objective::Throughput)
            .expect("search succeeds");
        print_table(
            &["policy", "tok/s", "batch", "FFN gpu%"],
            &[
                (
                    "All-CPU b=44".to_owned(),
                    vec![allcpu.throughput_tps(), 44.0, 0.0],
                ),
                (
                    "auto".to_owned(),
                    vec![
                        auto_t.report.throughput_tps(),
                        f64::from(auto_t.batch),
                        auto_t.ffn_gpu_percent,
                    ],
                ),
            ],
        );
    }
    println!(
        "\nReading: the latency search lands on a HeLM-shaped split (biases/\n\
         norms + a large FFN share on GPU); the throughput search evicts\n\
         weights and maxes the batch -- the paper's two policies are the two\n\
         ends of the QoS dial."
    );
}
