//! Ablation: the placement search engine versus the seed's serial
//! coarse sweep. Two questions:
//!
//! 1. Quality — does the fine (1%-lattice) multi-resolution search
//!    still land on the paper's two policy shapes (HeLM-like for
//!    latency, All-CPU-like for throughput)?
//! 2. Cost — how much faster is the pruned, parallel, zoomed search
//!    than the serial 10%-grid it replaced, across thread counts?
//!
//! The serial reference is hand-rolled here against the public
//! pipeline executor, exactly replicating the seed's loop (no
//! pruning, no zoom, every coarse candidate costed), so the speedup
//! is measured against the real predecessor rather than a strawman.
//! The run hard-fails when the engine loses to the serial sweep at
//! its default budget — "parallel search" that is slower than the
//! loop it replaced is a regression, not a feature.
//! Results also land in `output/BENCH_autoplace.json`.

use std::time::Instant;

use bench::{print_table, section};
use helm_core::autoplace::{search, search_in, Objective, SearchBudget, SearchSpace};
use helm_core::exec::{run_pipeline, PipelineInputs};
use helm_core::placement::{ModelPlacement, PlacementKind, Tier};
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

/// Thread budgets swept for the cost table. `0` is the default budget
/// (auto: machine parallelism) — the configuration the hard
/// no-regression gate below is enforced on.
const THREAD_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

/// The seed's serial coarse sweep: every 10%-grid candidate costed,
/// no pruning, no zoom. Returns `(wall_ms, evaluated, best_tbt_ms)`.
fn serial_coarse_reference(
    system: &SystemConfig,
    model: &ModelConfig,
    policy: &Policy,
    workload: &WorkloadSpec,
) -> Result<(f64, usize, f64), helm_core::HelmError> {
    let budget = gpusim::MemoryBudget::for_gpu(system.gpu());
    let started = Instant::now();
    let mut evaluated = 0usize;
    let mut best_tbt = f64::INFINITY;
    for mha in (0..=100u32).step_by(10) {
        for ffn in (0..=100u32).step_by(10) {
            let placement = ModelPlacement::compute_custom(
                model,
                policy.compressed(),
                [f64::from(mha), f64::from(100 - mha), 0.0],
                [f64::from(ffn), f64::from(100 - ffn), 0.0],
                [0.0, 100.0, 0.0],
            );
            if placement.total_on(Tier::Cpu) > system.tier_capacity(Tier::Cpu) {
                continue;
            }
            let costs = gpusim::ResidentCosts {
                weights: placement.total_on(Tier::Gpu),
                staging: placement.staging_bytes(),
                kv_per_sequence: llm::kv::kv_bytes_per_sequence(model, workload.context_len()),
                hidden_per_sequence: llm::kv::hidden_bytes_per_sequence(
                    model,
                    workload.context_len(),
                ),
            };
            if !budget.fits(&costs, policy.effective_batch()) {
                continue;
            }
            let report = run_pipeline(&PipelineInputs {
                system,
                model,
                policy,
                placement: &placement,
                workload,
            })?;
            evaluated += 1;
            if report.tbt_ms() < best_tbt {
                best_tbt = report.tbt_ms();
            }
        }
    }
    Ok((
        started.elapsed().as_secs_f64() * 1000.0,
        evaluated,
        best_tbt,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let policy = Policy::paper_default(&model, memory.kind())
        .with_compression(true)
        .with_batch_size(1);

    section("search cost: serial coarse sweep vs engine (latency objective)");
    // Untimed warmup so the timed rows compare steady-state code, not
    // first-touch page faults and cold branch predictors.
    std::hint::black_box(search(
        &system,
        &model,
        &policy,
        &workload,
        Objective::Latency,
        SearchBudget::default(),
    )?);
    let (serial_ms, serial_evals, serial_tbt) =
        serial_coarse_reference(&system, &model, &policy, &workload)?;
    let mut rows = vec![(
        "serial 10% grid (seed)".to_owned(),
        vec![serial_ms, serial_evals as f64, 0.0, 1.0, serial_tbt],
    )];
    let mut json_runs = Vec::new();
    let mut winner = None;
    let mut default_speedup = None;
    for threads in THREAD_COUNTS {
        let budget = SearchBudget {
            threads,
            max_evals: 0,
        };
        let auto = search(
            &system,
            &model,
            &policy,
            &workload,
            Objective::Latency,
            budget,
        )?;
        let stats = auto.stats;
        let speedup = serial_ms / stats.wall_ms;
        let evals_per_s = if stats.wall_ms > 0.0 {
            stats.evaluated as f64 / (stats.wall_ms / 1000.0)
        } else {
            0.0
        };
        let label = if threads == 0 {
            "engine, default budget".to_owned()
        } else {
            format!("engine, {threads} thread(s)")
        };
        rows.push((
            label,
            vec![
                stats.wall_ms,
                stats.evaluated as f64,
                stats.pruned as f64,
                speedup,
                auto.report.tbt_ms(),
            ],
        ));
        json_runs.push(format!(
            "    {{\"threads\": {threads}, \"wall_ms\": {:.3}, \"evaluated\": {}, \
             \"pruned\": {}, \"speedup_vs_serial\": {:.3}, \"evals_per_s\": {:.1}}}",
            stats.wall_ms, stats.evaluated, stats.pruned, speedup, evals_per_s
        ));
        if threads == 0 {
            default_speedup = Some(speedup);
        }
        winner = Some(auto);
    }
    print_table(
        &[
            "search", "wall(ms)", "evals", "pruned", "speedup", "TBT(ms)",
        ],
        &rows,
    );

    // Hard no-regression gate: at its default budget the engine must
    // not lose to the serial sweep it replaced. Screening on template
    // byte totals, the table-free bound, and the small-level serial
    // fallback each exist to hold this line — a regression in any of
    // them fails the run instead of shipping a slower "optimization".
    let default_speedup = default_speedup.ok_or("default-budget run missing")?;
    if default_speedup < 1.0 {
        return Err(format!(
            "engine slower than the serial sweep at default budget: \
             speedup_vs_serial = {default_speedup:.3} < 1.0"
        )
        .into());
    }

    let auto = winner.ok_or("no search ran")?;

    section("0.5% lattice: the finest descent, same no-regression gate");
    // The half-percent space is 4x the 1% lattice (201x201 points);
    // the multi-resolution schedule must still clear the serial 10%
    // sweep outright at this larger budget — the hard gate below
    // holds the line at the finest resolution shipped.
    let fine = search_in(
        &system,
        &model,
        &policy,
        &workload,
        Objective::Latency,
        SearchBudget::default(),
        SearchSpace {
            fine_step_half_pct: 1,
            batches: Vec::new(),
        },
    )?;
    let fine_speedup = serial_ms / fine.stats.wall_ms;
    print_table(
        &[
            "search", "wall(ms)", "evals", "pruned", "speedup", "TBT(ms)",
        ],
        &[(
            "engine, 0.5% lattice".to_owned(),
            vec![
                fine.stats.wall_ms,
                fine.stats.evaluated as f64,
                fine.stats.pruned as f64,
                fine_speedup,
                fine.report.tbt_ms(),
            ],
        )],
    );
    if fine_speedup < 1.0 {
        return Err(format!(
            "0.5%-lattice search slower than the serial sweep: \
             speedup_vs_serial = {fine_speedup:.3} < 1.0"
        )
        .into());
    }
    if fine.report.tbt_ms() > auto.report.tbt_ms() * (1.0 + 1e-12) {
        return Err(format!(
            "a strictly finer lattice lost quality: {} ms vs {} ms on the 1% grid",
            fine.report.tbt_ms(),
            auto.report.tbt_ms()
        )
        .into());
    }

    section("joint {placement x batch} space (throughput objective)");
    let joint_batches = vec![1u32, 4, 8, 44];
    let joint = search_in(
        &system,
        &model,
        &policy,
        &workload,
        Objective::Throughput,
        SearchBudget::default(),
        SearchSpace {
            fine_step_half_pct: 2,
            batches: joint_batches.clone(),
        },
    )?;
    print_table(
        &["search", "tok/s", "batch", "MHA gpu%", "FFN gpu%"],
        &[(
            "joint batch list".to_owned(),
            vec![
                joint.report.throughput_tps(),
                f64::from(joint.batch),
                joint.mha_gpu_percent,
                joint.ffn_gpu_percent,
            ],
        )],
    );
    if !joint_batches.contains(&joint.batch) {
        return Err(format!(
            "joint search chose batch {} outside its listed space {joint_batches:?}",
            joint.batch
        )
        .into());
    }

    section("quality: fine-search winner vs hand-built policies");
    let helm = Server::new(
        system.clone(),
        model.clone(),
        policy.clone().with_placement(PlacementKind::Helm),
    )?
    .run(&workload)?;
    print_table(
        &["policy", "TBT(ms)", "MHA gpu%", "FFN gpu%"],
        &[
            (
                "HeLM (hand-built)".to_owned(),
                vec![helm.tbt_ms(), 10.0, 30.0],
            ),
            (
                "auto (1% lattice)".to_owned(),
                vec![
                    auto.report.tbt_ms(),
                    auto.mha_gpu_percent,
                    auto.ffn_gpu_percent,
                ],
            ),
        ],
    );

    section("throughput objective rediscovers All-CPU");
    let allcpu = Server::new(
        system.clone(),
        model.clone(),
        policy
            .clone()
            .with_placement(PlacementKind::AllCpu)
            .with_batch_size(44),
    )?
    .run(&workload)?;
    let auto_t = search(
        &system,
        &model,
        &policy,
        &workload,
        Objective::Throughput,
        SearchBudget::default(),
    )?;
    print_table(
        &["policy", "tok/s", "batch", "FFN gpu%"],
        &[
            (
                "All-CPU b=44".to_owned(),
                vec![allcpu.throughput_tps(), 44.0, 0.0],
            ),
            (
                "auto".to_owned(),
                vec![
                    auto_t.report.throughput_tps(),
                    f64::from(auto_t.batch),
                    auto_t.ffn_gpu_percent,
                ],
            ),
        ],
    );

    let json = format!(
        "{{\n  \"model\": \"{}\",\n  \"memory\": \"{}\",\n  \"objective\": \"latency\",\n  \
         \"serial_coarse\": {{\"wall_ms\": {:.3}, \"evaluated\": {}, \"best_tbt_ms\": {:.3}}},\n  \
         \"engine\": [\n{}\n  ],\n  \
         \"half_percent_lattice\": {{\"wall_ms\": {:.3}, \"evaluated\": {}, \"pruned\": {}, \
         \"speedup_vs_serial\": {:.3}, \"tbt_ms\": {:.3}, \"mha_gpu_percent\": {}, \
         \"ffn_gpu_percent\": {}}},\n  \
         \"joint_batch\": {{\"batches\": {:?}, \"winner_batch\": {}, \"tok_s\": {:.3}, \
         \"ffn_gpu_percent\": {}}},\n  \
         \"winner\": {{\"mha_gpu_percent\": {}, \"ffn_gpu_percent\": {}, \"batch\": {}, \
         \"tbt_ms\": {:.3}}}\n}}\n",
        model.name(),
        memory.kind(),
        serial_ms,
        serial_evals,
        serial_tbt,
        json_runs.join(",\n"),
        fine.stats.wall_ms,
        fine.stats.evaluated,
        fine.stats.pruned,
        fine_speedup,
        fine.report.tbt_ms(),
        fine.mha_gpu_percent,
        fine.ffn_gpu_percent,
        joint_batches,
        joint.batch,
        joint.report.throughput_tps(),
        joint.ffn_gpu_percent,
        auto.mha_gpu_percent,
        auto.ffn_gpu_percent,
        auto.batch,
        auto.report.tbt_ms(),
    );
    std::fs::create_dir_all("output")?;
    std::fs::write("output/BENCH_autoplace.json", &json)?;
    println!("\nwrote output/BENCH_autoplace.json");

    println!(
        "\nReading: the engine now beats the serial sweep outright -- screening\n\
         rejects infeasible candidates on analytic byte totals (no placement\n\
         built), the bound reads per-layer cost functions directly (no table\n\
         for pruned candidates), and small zoom levels run inline instead of\n\
         paying thread fan-out. The winner is bit-identical to the serial\n\
         sweep's at every thread count. The latency winner keeps a\n\
         HeLM-shaped split and the throughput winner evicts weights for\n\
         batch -- the paper's two policies are the two ends of the QoS dial."
    );
    Ok(())
}
