//! Figure 5: compute/communication overlap during prefill and decode
//! for OPT-30B (batch 1, 32) and OPT-175B (batch 1, 8), uncompressed.
//! Bars = average weight transfer per layer; line = average compute;
//! dashed line = ideal all-DRAM transfer time.

use bench::{print_comparisons, print_table, run_serving, section, Comparison};
use helm_core::metrics::{RunReport, Stage};
use helm_core::placement::{PlacementKind, Tier};
use helm_core::policy::Policy;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn run(
    model: &ModelConfig,
    memory: HostMemoryConfig,
    batch: u32,
) -> Result<RunReport, helm_core::HelmError> {
    run_serving(
        model.clone(),
        memory,
        PlacementKind::Baseline,
        false,
        batch,
        &WorkloadSpec::paper_default(),
    )
}

/// The "ideal" average hidden-layer transfer time on an all-DRAM
/// system (the paper measures it with an 8-block model so the weights
/// fit DRAM; analytically that is just bytes over the DRAM path rate).
fn dram_ideal_ms(model: &ModelConfig) -> Result<f64, helm_core::HelmError> {
    let system = SystemConfig::paper_platform(HostMemoryConfig::dram());
    let policy = Policy::paper_default(model, hetmem::MemoryConfigKind::NvDram);
    let placement = helm_core::ModelPlacement::compute(model, &policy);
    let hidden: Vec<_> = placement
        .layers()
        .iter()
        .filter(|l| l.layer().kind().is_hidden())
        .collect();
    let mut total_ms = 0.0;
    for l in &hidden {
        let bytes = l.bytes_on(Tier::Cpu, placement.dtype());
        total_ms += system
            .tier_transfer_time(Tier::Cpu, bytes, None)
            .ok_or(helm_core::HelmError::TierUnavailable { tier: "cpu" })?
            .as_millis();
    }
    Ok(total_ms / hidden.len() as f64)
}

fn print_stage_table(title: &str, reports: &[RunReport], ideal_ms: f64) {
    section(title);
    let mut rows = Vec::new();
    for stage in [Stage::Prefill, Stage::Decode] {
        for r in reports {
            rows.push((
                format!("{} b={} {}", r.config, r.batch, stage),
                vec![
                    r.avg_hidden_weight_transfer(stage).as_millis(),
                    r.avg_hidden_compute(stage).as_millis(),
                ],
            ));
        }
    }
    print_table(&["config/stage", "xfer(ms)", "compute(ms)"], &rows);
    println!("ideal all-DRAM transfer: {ideal_ms:.2} ms/layer");
}

fn main() -> Result<(), helm_core::HelmError> {
    let m30 = ModelConfig::opt_30b();
    let r30: Vec<RunReport> = [1u32, 32]
        .iter()
        .flat_map(|&b| {
            HostMemoryConfig::opt30b_set()
                .into_iter()
                .map(move |cfg| (b, cfg))
        })
        .map(|(b, cfg)| run(&m30, cfg, b))
        .collect::<Result<_, _>>()?;
    print_stage_table("Fig 5a/5c: OPT-30B", &r30, dram_ideal_ms(&m30)?);

    let m175 = ModelConfig::opt_175b();
    let r175: Vec<RunReport> = [1u32, 8]
        .iter()
        .flat_map(|&b| {
            [HostMemoryConfig::nvdram(), HostMemoryConfig::memory_mode()]
                .into_iter()
                .map(move |cfg| (b, cfg))
        })
        .map(|(b, cfg)| run(&m175, cfg, b))
        .collect::<Result<_, _>>()?;
    let ideal175 = dram_ideal_ms(&m175)?;
    print_stage_table("Fig 5b/5d: OPT-175B", &r175, ideal175);

    section("Fig 5: paper claims");
    let prefill_c = |r: &RunReport| r.avg_hidden_compute(Stage::Prefill).as_millis();
    let b1 = &r30[0];
    let b32 = &r30[3];
    let nv1 = &r175[0];
    let mm1 = &r175[1];
    let nv_xfer = nv1.avg_hidden_weight_transfer(Stage::Decode).as_millis();
    let mm_xfer = mm1.avg_hidden_weight_transfer(Stage::Decode).as_millis();
    print_comparisons(&[
        Comparison::new(
            "OPT-30B prefill compute x (b=1 -> 32)",
            15.0,
            prefill_c(b32) / prefill_c(b1),
            "x",
        ),
        Comparison::new(
            "DRAM ideal improves transfer vs NVDIMM",
            32.78,
            (1.0 - ideal175 / nv_xfer) * 100.0,
            "%",
        ),
        Comparison::new(
            "DRAM ideal improves transfer vs MemoryMode",
            22.41,
            (1.0 - ideal175 / mm_xfer) * 100.0,
            "%",
        ),
        Comparison::new(
            "OPT-175B decode transfer/compute (orders of magnitude)",
            56.0,
            nv_xfer / nv1.avg_hidden_compute(Stage::Decode).as_millis(),
            "x",
        ),
    ]);
    Ok(())
}
