//! Ablation: application-aware placement vs transparent alternatives.
//!
//! The paper positions its contribution against application-agnostic
//! tiering (§VI: TPP-style transparent page placement). This ablation
//! serves OPT-175B (uncompressed, so the footprint actually thrashes
//! the 256 GB of DRAM) under:
//!
//! * flat Optane (NVDRAM) with the baseline and HeLM placements,
//! * Optane Memory Mode (hardware direct-mapped DRAM cache),
//! * TPP-style OS page tiering (software promotion/demotion).

use bench::{print_table, run_serving, section};
use helm_core::placement::PlacementKind;
use hetmem::AccessProfile;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::units::ByteSize;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let workload = WorkloadSpec::paper_default();
    let model = ModelConfig::opt_175b();

    section("effective host->GPU feed at the OPT-175B working set (~320 GB)");
    let probe = AccessProfile::sequential_read(ByteSize::from_gb(2.4))
        .with_working_set(ByteSize::from_gb(320.0));
    let mut rows = Vec::new();
    for cfg in [
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::tpp_tiered(),
        HostMemoryConfig::memory_mode(),
    ] {
        rows.push((
            cfg.kind().to_string(),
            vec![cfg.cpu_device().bandwidth(&probe).as_gb_per_s()],
        ));
    }
    print_table(&["memory", "device GB/s"], &rows);

    section("substrate comparison: OPT-175B uncompressed, baseline placement, batch 1");
    let mut rows = Vec::new();
    for cfg in [
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::tpp_tiered(),
        HostMemoryConfig::memory_mode(),
    ] {
        let label = cfg.kind().to_string();
        let report = run_serving(
            model.clone(),
            cfg,
            PlacementKind::Baseline,
            false,
            1,
            &workload,
        )?;
        rows.push((label, vec![report.ttft_ms(), report.tbt_ms()]));
    }
    print_table(&["substrate", "TTFT(ms)", "TBT(ms)"], &rows);

    section("full-system contrast: transparent management vs the paper's recipe");
    let mut rows = Vec::new();
    let tpp = run_serving(
        model.clone(),
        HostMemoryConfig::tpp_tiered(),
        PlacementKind::Baseline,
        false,
        1,
        &workload,
    )?;
    rows.push((
        "TPP, uncompressed".to_owned(),
        vec![tpp.ttft_ms(), tpp.tbt_ms()],
    ));
    let recipe = run_serving(
        model,
        HostMemoryConfig::nvdram(),
        PlacementKind::Helm,
        true,
        1,
        &workload,
    )?;
    rows.push((
        "NVDRAM, HeLM + 4-bit (paper)".to_owned(),
        vec![recipe.ttft_ms(), recipe.tbt_ms()],
    ));
    print_table(&["system", "TTFT(ms)", "TBT(ms)"], &rows);
    println!(
        "\nReading: transparent page tiering UNDERPERFORMS even flat Optane on\n\
         this workload -- migration churn adds Optane *writes* (the Fig 3b\n\
         weak spot) to a scan that defeats promotion anyway; the hardware\n\
         cache (Memory Mode) fares better. The paper's application-aware\n\
         recipe (compression + HeLM) beats all transparent options by ~7x.\n\
         Note HeLM *requires* compression: at FP16 its GPU-resident FC1\n\
         share (96 x 2.4 GB) cannot fit, and the capacity fallback demotes\n\
         it to an all-host layout."
    );
    Ok(())
}
