//! Extension: deadline-aware admission control on a heterogeneous
//! cluster — the serving-layer view of the paper's latency/throughput
//! dial.
//!
//! Sweeps arrival rate x SLO over a `{HeLM b=4, All-CPU b=44}` mix
//! behind the deadline-aware (EDF + best-fit) dispatcher, comparing
//! `accept-all` admission against `deadline-feasible` admission that
//! rejects at arrival any request whose modeled finish already misses
//! its deadline. Reports goodput (tokens/s from requests that met
//! their SLO) and SLO attainment for both policies.
//!
//! Every run is audited: the request ledger must balance
//! (`enqueued == completed + abandoned` on every pipeline) or the
//! bench exits non-zero. At the saturating arrival rates the
//! deadline-feasible policy must not lose goodput versus accept-all —
//! shedding doomed requests at arrival frees batch slots for requests
//! that can still make it — and a violation is a hard error, so CI
//! catches regressions in the admission path.
//!
//! Results land in `output/BENCH_admission.json`. `--quick` shrinks
//! the sweep for CI smoke runs.

use bench::{print_table, section};
use helm_core::online::{
    run_cluster_mix, AdmissionPolicy, ClusterReport, ClusterSpec, DeadlineSpec, PoissonArrivals,
    SchedulerKind,
};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::SimDuration;
use workload::WorkloadSpec;

fn server(placement: PlacementKind, batch: u32) -> Result<Server, helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
}

/// One sweep cell: the mix cluster at (`lambda`, `slo`) under
/// `admission`. Fails the bench if the run's request ledger is dirty.
fn run_cell(
    groups: &[(&Server, usize)],
    ws: &WorkloadSpec,
    n: usize,
    lambda: f64,
    slo: SimDuration,
    admission: AdmissionPolicy,
) -> Result<ClusterReport, Box<dyn std::error::Error>> {
    let spec = ClusterSpec::new(1)
        .with_scheduler(SchedulerKind::DeadlineAware)
        .with_admission(admission)
        .with_deadlines(DeadlineSpec::Fixed(slo));
    let report = run_cluster_mix(groups, ws, &mut PoissonArrivals::new(lambda, 42), n, spec)?;
    let audit = report
        .audit
        .as_ref()
        .ok_or("auditing was not enabled for the bench run")?;
    if !audit.is_clean() {
        return Err(format!(
            "dirty ledger at lambda={lambda} slo={}s admission={admission}:\n{audit}",
            slo.as_secs()
        )
        .into());
    }
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    simaudit::force_enable();
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 60 } else { 200 };
    // The mix's combined capacity is ~0.34 req/s (HeLM b=4 at ~0.041
    // + All-CPU b=44 at ~0.297), so the top rate drives the cluster
    // past saturation where admission control earns its keep.
    let lambdas: &[f64] = if quick {
        &[0.10, 0.50]
    } else {
        &[0.05, 0.10, 0.20, 0.50]
    };
    let slos_s: &[f64] = if quick {
        &[200.0]
    } else {
        &[200.0, 400.0, 800.0]
    };

    let helm = server(PlacementKind::Helm, 4)?;
    let allcpu = server(PlacementKind::AllCpu, 44)?;
    let groups = [(&helm, 1usize), (&allcpu, 1usize)];

    section(&format!(
        "admission control on {{HeLM b=4, All-CPU b=44}} mix (OPT-175B, NVDRAM, n={n})"
    ));

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for &slo_s in slos_s {
        let slo = SimDuration::from_secs(slo_s);
        for &lambda in lambdas {
            let open = run_cell(
                &groups,
                &WorkloadSpec::paper_default(),
                n,
                lambda,
                slo,
                AdmissionPolicy::AcceptAll,
            )?;
            let gated = run_cell(
                &groups,
                &WorkloadSpec::paper_default(),
                n,
                lambda,
                slo,
                AdmissionPolicy::DeadlineFeasible,
            )?;
            rows.push((
                format!("slo {slo_s:.0}s, {lambda:.2} req/s"),
                vec![
                    open.slo_attainment(),
                    open.tokens_per_s_met,
                    gated.slo_attainment(),
                    gated.tokens_per_s_met,
                    f64::from(u32::try_from(gated.rejected).unwrap_or(u32::MAX)),
                ],
            ));
            cells.push((slo_s, lambda, open, gated));
        }
    }
    print_table(
        &[
            "cell",
            "open attain",
            "open goodput",
            "gated attain",
            "gated goodput",
            "rejected",
        ],
        &rows,
    );

    // The demonstrated claim: at the saturating arrival rate,
    // deadline-feasible admission does not lose goodput — rejecting
    // requests that were going to miss anyway cannot hurt the ones
    // that can still make it, and typically helps by freeing slots.
    let saturating = lambdas[lambdas.len() - 1];
    let mut regressions = Vec::new();
    for (slo_s, lambda, open, gated) in &cells {
        if *lambda == saturating && gated.tokens_per_s_met < open.tokens_per_s_met {
            regressions.push(format!(
                "slo {slo_s:.0}s lambda {lambda:.2}: gated goodput {:.3} < open {:.3}",
                gated.tokens_per_s_met, open.tokens_per_s_met
            ));
        }
    }

    let cell_json: Vec<String> = cells
        .iter()
        .map(|(slo_s, lambda, open, gated)| {
            format!(
                "    {{\"slo_s\": {slo_s:.0}, \"lambda\": {lambda}, \
                 \"open\": {}, \"gated\": {}}}",
                report_json(open),
                report_json(gated)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"model\": \"OPT-175B\",\n  \"mix\": \"helm:4,all-cpu:44\",\n  \
         \"scheduler\": \"edf\",\n  \"quick\": {quick},\n  \"n\": {n},\n  \
         \"saturating_lambda\": {saturating},\n  \"goodput_regressions\": {},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        regressions.len(),
        cell_json.join(",\n")
    );
    std::fs::create_dir_all("output")?;
    std::fs::write("output/BENCH_admission.json", &json)?;
    println!("\nwrote output/BENCH_admission.json");

    if !regressions.is_empty() {
        return Err(format!(
            "deadline-feasible admission lost goodput at saturating load:\n{}",
            regressions.join("\n")
        )
        .into());
    }
    println!(
        "deadline-feasible admission held or improved goodput at lambda={saturating} \
         across all SLOs; every ledger balanced"
    );
    Ok(())
}

/// The per-policy slice of one sweep cell as a JSON object.
fn report_json(r: &ClusterReport) -> String {
    format!(
        "{{\"served\": {}, \"rejected\": {}, \"expired\": {}, \"met\": {}, \
         \"slo_violations\": {}, \"attainment\": {:.4}, \"tokens_per_s\": {:.3}, \
         \"tokens_per_s_met\": {:.3}}}",
        r.served,
        r.rejected,
        r.expired,
        r.met,
        r.slo_violations,
        r.slo_attainment(),
        r.tokens_per_s,
        r.tokens_per_s_met
    )
}
