//! Extension: how the paper's conclusions move with the platform.
//!
//! Two axes the paper fixes (A100-40GB, PCIe Gen 4) but the conclusion
//! section implicitly asks about:
//!
//! * **GPU memory**: more HBM means more resident weights and bigger
//!   batches — does placement still matter at 80 GB?
//! * **PCIe generation**: a faster accelerator link moves the
//!   bottleneck from the link to the host memory itself, changing how
//!   much an Optane-class tier costs.

use bench::{print_table, section};
use gpusim::GpuSpec;
use helm_core::exec::{run_pipeline, PipelineInputs};
use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::numa::{NodeId, NumaTopology};
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;
use xfer::path::PathModel;
use xfer::pcie::{PcieGen, PcieLink};

fn system(gpu: GpuSpec, gen: PcieGen) -> SystemConfig {
    SystemConfig::new(
        HostMemoryConfig::nvdram(),
        gpu,
        NumaTopology::paper_system(),
        PathModel::new(PcieLink::new(gen, 16), NodeId(0)),
        NodeId(0),
    )
}

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();

    section("GPU memory axis (NVDRAM, compressed, PCIe Gen 4)");
    let mut rows = Vec::new();
    for gpu in [
        GpuSpec::a100_40gb(),
        GpuSpec::a100_80gb(),
        GpuSpec::h100_80gb(),
    ] {
        let sys = system(gpu.clone(), PcieGen::Gen4);
        let policy = Policy::paper_default(&model, sys.memory().kind())
            .with_compression(true)
            .with_placement(PlacementKind::AllCpu);
        let server = Server::new(sys.clone(), model.clone(), policy.clone())?;
        let max = server.max_batch(&workload);
        let best = Server::new(sys, model.clone(), policy.with_batch_size(max))?.run(&workload)?;
        rows.push((
            gpu.name().to_owned(),
            vec![f64::from(max), best.throughput_tps()],
        ));
    }
    print_table(&["GPU", "All-CPU max batch", "tok/s at max"], &rows);

    section("PCIe generation axis (NVDRAM, compressed, batch 1)");
    let mut rows = Vec::new();
    for gen in [PcieGen::Gen3, PcieGen::Gen4, PcieGen::Gen5] {
        let sys = system(GpuSpec::a100_40gb(), gen);
        let mut tbt = Vec::new();
        for kind in [PlacementKind::Baseline, PlacementKind::Helm] {
            let policy = Policy::paper_default(&model, sys.memory().kind())
                .with_compression(true)
                .with_placement(kind)
                .with_batch_size(1);
            let placement = ModelPlacement::compute(&model, &policy);
            let report = run_pipeline(&PipelineInputs {
                system: &sys,
                model: &model,
                policy: &policy,
                placement: &placement,
                workload: &workload,
            })?;
            tbt.push(report.tbt_ms());
        }
        rows.push((
            format!("{gen:?} x16"),
            vec![tbt[0], tbt[1], (1.0 - tbt[1] / tbt[0]) * 100.0],
        ));
    }
    print_table(
        &["link", "base TBT(ms)", "HeLM TBT(ms)", "HeLM gain %"],
        &rows,
    );
    println!(
        "\nReading: doubling HBM roughly doubles the All-CPU batch ceiling\n\
         (KV scales with batch); the H100's extra compute barely moves\n\
         transfer-bound decode. Across PCIe generations, the Optane media\n\
         itself bounds the feed (~16-20 GB/s), so Gen 5 adds little --\n\
         HeLM's balancing gain persists on every link, because the\n\
         imbalance it fixes is relative, not absolute."
    );
    Ok(())
}
