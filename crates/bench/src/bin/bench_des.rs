//! Scheduler-scale microbenchmark: events/s and requests/s of the
//! DES core across request volumes n ∈ {1e4, 1e5, 1e6}.
//!
//! The north star is "millions of users": this bench proves the
//! event loop itself — calendar-queue scheduling, pooled event and
//! request state, the lazy arrival chain, and the allocation-free
//! `RecordMode::Aggregate` cluster path — sustains a million-request
//! mixed-cluster run in seconds, with the conservation audit forced
//! on so every enqueue/complete/abandon count stays exact at scale.
//!
//! Three hard gates (the run errors, not warns):
//!
//! * the calendar queue's `ClusterReport` must match the binary-heap
//!   scheduler's byte for byte at n = 1e4 (same `(time, seq)` total
//!   order, so even float aggregates may not drift);
//! * the largest run must clear [`EVENTS_PER_S_FLOOR`] and finish
//!   with a clean audit ledger;
//! * on the granularity axis (continuous batching, per-step vs
//!   coalesced decode spans), the reports must stay byte-identical at
//!   every volume and coalescing must clear
//!   [`GRANULARITY_SPEEDUP_FLOOR`] at the largest.
//!
//! Results land in `output/BENCH_des.json`. `--quick` drops the 1e6
//! tier for CI smoke runs (the floors still apply at 1e5).

use std::time::Instant;

use bench::{print_table, section};
use helm_core::exec::RecordMode;
use helm_core::online::{
    run_cluster_mix, run_cluster_mix_traced, CalibrationCache, ClusterReport, ClusterSpec,
    PoissonArrivals, StepGranularity,
};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use helm_core::trace::validate_chrome_trace;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::queue::QueueBackend;
use workload::WorkloadSpec;

/// Hard floor on sustained events/s at the largest request volume.
/// The calendar-queue core measures well above 1M events/s on a
/// single CI core; a drop below this line means the event loop
/// regressed structurally (per-event allocation, queue degeneration),
/// not that the machine was slow.
const EVENTS_PER_S_FLOOR: f64 = 100_000.0;

/// Hard floor on `per-step / coalesced` wall time at the largest
/// granularity-axis volume, measured on the continuous-batching mix
/// where decode spans dominate the event count. Coalescing replaces
/// every per-step priority-queue round-trip with tight-loop
/// arithmetic; losing this floor means the macro-stepping layer
/// stopped paying for itself.
const GRANULARITY_SPEEDUP_FLOOR: f64 = 2.0;

/// Offered arrival rate (requests/s of simulated time). High enough
/// to keep every replica's queue non-empty — the bench measures the
/// scheduler under sustained load, not idle-tick dispatch.
const ARRIVAL_RATE: f64 = 2.0;

/// One measured volume tier.
struct Tier {
    num_requests: usize,
    wall_s: f64,
    report: ClusterReport,
}

fn run_tier(
    groups: &[(&Server, usize)],
    workload: &WorkloadSpec,
    num_requests: usize,
    backend: QueueBackend,
    record: RecordMode,
    granularity: StepGranularity,
    continuous: bool,
) -> Result<Tier, helm_core::HelmError> {
    let spec = ClusterSpec::new(1)
        .with_scheduler(helm_core::online::SchedulerKind::JoinShortestQueue)
        .with_record(record)
        .with_backend(backend)
        .with_granularity(granularity)
        .with_continuous(continuous);
    let mut arrivals = PoissonArrivals::new(ARRIVAL_RATE, 4242);
    let started = Instant::now();
    let report = run_cluster_mix(groups, workload, &mut arrivals, num_requests, spec)?;
    Ok(Tier {
        num_requests,
        wall_s: started.elapsed().as_secs_f64(),
        report,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    // Audits are compiled out of release builds by default; the whole
    // point here is exact ledgers at 1e6 counts, so force them on and
    // absorb their cost in the reported throughput.
    simaudit::force_enable();

    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let base = Policy::paper_default(&model, memory.kind()).with_compression(true);
    // A heterogeneous mix: latency-shaped HeLM replicas next to
    // throughput-shaped All-CPU replicas, so dispatch exercises the
    // real multi-model path rather than a clone farm.
    let helm = Server::new(
        system.clone(),
        model.clone(),
        base.clone()
            .with_placement(PlacementKind::Helm)
            .with_batch_size(4),
    )?;
    // Batch-1 HeLM replicas for the granularity axis: every decode
    // step serves exactly one request, so span events dominate the
    // count and coalescing has the most queue traffic to remove.
    let helm_b1 = Server::new(
        system.clone(),
        model.clone(),
        base.clone()
            .with_placement(PlacementKind::Helm)
            .with_batch_size(1),
    )?;
    let allcpu = Server::new(
        system.clone(),
        model.clone(),
        base.with_placement(PlacementKind::AllCpu)
            .with_batch_size(44),
    )?;
    let groups: &[(&Server, usize)] = &[(&helm, 2), (&allcpu, 2)];

    section("backend equivalence: calendar vs heap at n = 1e4");
    for record in [RecordMode::Full, RecordMode::Aggregate] {
        let cal = run_tier(
            groups,
            &workload,
            10_000,
            QueueBackend::Calendar,
            record,
            StepGranularity::default(),
            false,
        )?;
        let heap = run_tier(
            groups,
            &workload,
            10_000,
            QueueBackend::Heap,
            record,
            StepGranularity::default(),
            false,
        )?;
        // Debug formatting prints every field including float bit
        // patterns via their shortest round-trip form; equality here
        // is byte-identity of the full report.
        if format!("{:?}", cal.report) != format!("{:?}", heap.report) {
            return Err(format!(
                "calendar and heap schedulers diverged at n=1e4 ({record:?} mode)"
            )
            .into());
        }
        println!(
            "{record:?}: identical reports ({} events, {} served)",
            cal.report.events, cal.report.served
        );
    }

    section("throughput: aggregate-mode mixed cluster, calendar queue");
    let volumes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut tiers = Vec::new();
    for &n in volumes {
        let tier = run_tier(
            groups,
            &workload,
            n,
            QueueBackend::Calendar,
            RecordMode::Aggregate,
            StepGranularity::default(),
            false,
        )?;
        let audit = tier
            .report
            .audit
            .as_ref()
            .ok_or("auditing was forced on but no report came back")?;
        if !audit.is_clean() {
            return Err(format!("audit ledger dirty at n={n}: {audit}").into());
        }
        if audit.completed_with_prefix("requests:") != tier.report.served {
            return Err(format!("ledger/report served mismatch at n={n}").into());
        }
        tiers.push(tier);
    }
    let rows: Vec<(String, Vec<f64>)> = tiers
        .iter()
        .map(|t| {
            (
                format!("n = {}", t.num_requests),
                vec![
                    t.wall_s * 1000.0,
                    t.report.events as f64,
                    t.report.events as f64 / t.wall_s,
                    t.num_requests as f64 / t.wall_s,
                    t.report.served as f64,
                ],
            )
        })
        .collect();
    print_table(
        &[
            "volume",
            "wall(ms)",
            "events",
            "events/s",
            "requests/s",
            "served",
        ],
        &rows,
    );

    let largest = tiers.last().ok_or("no tier ran")?;
    let events_per_s = largest.report.events as f64 / largest.wall_s;
    if events_per_s < EVENTS_PER_S_FLOOR {
        return Err(format!(
            "event loop regressed: {events_per_s:.0} events/s at n={} is below the \
             {EVENTS_PER_S_FLOOR:.0} floor",
            largest.num_requests
        )
        .into());
    }

    section("granularity axis: per-step vs coalesced, continuous batching");
    // Continuous batching is where macro-stepping bites: every decode
    // step is one work unit, so per-step granularity pays one
    // priority-queue round-trip per token while coalesced replays the
    // same arithmetic in a tight loop between scheduler epochs. The
    // axis runs latency-shaped batch-1 replicas — each decode step
    // advances a single request, so span events dominate the count
    // (the big-batch mix above amortizes a step over 44 requests and
    // hides the queue cost). The reports must stay byte-identical at
    // every volume — coalescing is a perf knob, never a semantics
    // knob.
    let gran_groups: &[(&Server, usize)] = &[(&helm_b1, 4)];
    let mut gran_rows = Vec::new();
    let mut gran_json = Vec::new();
    let mut gran_speedup = 0.0f64;
    for &n in volumes {
        let step = run_tier(
            gran_groups,
            &workload,
            n,
            QueueBackend::Calendar,
            RecordMode::Aggregate,
            StepGranularity::PerStep,
            true,
        )?;
        let coal = run_tier(
            gran_groups,
            &workload,
            n,
            QueueBackend::Calendar,
            RecordMode::Aggregate,
            StepGranularity::Coalesced,
            true,
        )?;
        if format!("{:?}", step.report) != format!("{:?}", coal.report) {
            return Err(format!("per-step and coalesced granularities diverged at n={n}").into());
        }
        let audit = coal
            .report
            .audit
            .as_ref()
            .ok_or("auditing was forced on but the coalesced run has no ledger")?;
        if !audit.is_clean() {
            return Err(format!("coalesced audit ledger dirty at n={n}: {audit}").into());
        }
        gran_speedup = step.wall_s / coal.wall_s;
        gran_rows.push((
            format!("n = {n}"),
            vec![
                step.wall_s * 1000.0,
                coal.wall_s * 1000.0,
                gran_speedup,
                coal.report.events as f64,
                n as f64 / coal.wall_s,
            ],
        ));
        gran_json.push(format!(
            "    {{\"num_requests\": {n}, \"per_step_wall_s\": {:.3}, \
             \"coalesced_wall_s\": {:.3}, \"speedup\": {:.2}, \"events\": {}, \
             \"coalesced_requests_per_s\": {:.1}, \"reports_identical\": true, \
             \"audit_clean\": true}}",
            step.wall_s,
            coal.wall_s,
            gran_speedup,
            coal.report.events,
            n as f64 / coal.wall_s,
        ));
    }
    print_table(
        &[
            "volume",
            "step(ms)",
            "coal(ms)",
            "speedup",
            "events",
            "requests/s",
        ],
        &gran_rows,
    );
    if gran_speedup < GRANULARITY_SPEEDUP_FLOOR {
        return Err(format!(
            "coalescing regressed: {gran_speedup:.2}x over per-step at the largest volume \
             is below the {GRANULARITY_SPEEDUP_FLOOR}x floor"
        )
        .into());
    }

    section("tracing axis: span collection on vs off at n = 1e4");
    // Tracing is a side channel: the traced run must produce a
    // byte-identical report (attribution is computed unconditionally;
    // only the span trees ride the extra channel), and the untraced
    // path — the one the events/s floor above gates — must not pay
    // for spans it never collects. The collected trace is validated
    // structurally and through the chrome-trace rendering, the same
    // checks `helmsim trace-validate` runs on exported files.
    let trace_n = volumes[0];
    let untraced = run_tier(
        groups,
        &workload,
        trace_n,
        QueueBackend::Calendar,
        RecordMode::Aggregate,
        StepGranularity::default(),
        false,
    )?;
    let spec = ClusterSpec::new(1)
        .with_scheduler(helm_core::online::SchedulerKind::JoinShortestQueue)
        .with_record(RecordMode::Aggregate)
        .with_backend(QueueBackend::Calendar);
    let mut arrivals = PoissonArrivals::new(ARRIVAL_RATE, 4242);
    let traced_started = Instant::now();
    let (traced_report, trace) = run_cluster_mix_traced(
        groups,
        &workload,
        &mut arrivals,
        trace_n,
        spec,
        &mut CalibrationCache::new(),
    )?;
    let traced_wall_s = traced_started.elapsed().as_secs_f64();
    if format!("{:?}", untraced.report) != format!("{:?}", traced_report) {
        return Err(format!("tracing changed the report at n={trace_n}").into());
    }
    trace
        .validate()
        .map_err(|(id, e)| format!("request {id}: malformed span tree: {e}"))?;
    let chrome = trace.to_chrome_json();
    let chrome_stats = validate_chrome_trace(&chrome)
        .map_err(|e| format!("exported chrome trace invalid: {e}"))?;
    let trace_overhead = traced_wall_s / untraced.wall_s;
    print_table(
        &["axis", "wall(ms)", "spans", "events", "requests/s"],
        &[
            (
                "untraced".to_string(),
                vec![
                    untraced.wall_s * 1000.0,
                    0.0,
                    untraced.report.events as f64,
                    trace_n as f64 / untraced.wall_s,
                ],
            ),
            (
                "traced".to_string(),
                vec![
                    traced_wall_s * 1000.0,
                    trace.span_count() as f64,
                    traced_report.events as f64,
                    trace_n as f64 / traced_wall_s,
                ],
            ),
        ],
    );
    let trace_json = format!(
        "{{\n  \"model\": \"{}\",\n  \"memory\": \"{}\",\n  \"num_requests\": {trace_n},\n  \
         \"untraced_wall_s\": {:.3},\n  \"traced_wall_s\": {:.3},\n  \
         \"traced_over_untraced\": {:.2},\n  \"requests_traced\": {},\n  \
         \"span_count\": {},\n  \"reports_identical\": true,\n  \
         \"chrome_trace_events\": {},\n  \"chrome_trace_tracks\": {},\n  \
         \"nesting_valid\": true\n}}\n",
        model.name(),
        memory.kind(),
        untraced.wall_s,
        traced_wall_s,
        trace_overhead,
        trace.requests.len(),
        trace.span_count(),
        chrome_stats.events,
        chrome_stats.tracks,
    );
    std::fs::create_dir_all("output")?;
    std::fs::write("output/BENCH_trace.json", &trace_json)?;
    println!("\nwrote output/BENCH_trace.json");

    let tier_json: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "    {{\"num_requests\": {}, \"wall_s\": {:.3}, \"events\": {}, \
                 \"events_per_s\": {:.1}, \"requests_per_s\": {:.1}, \"served\": {}, \
                 \"audit_clean\": true}}",
                t.num_requests,
                t.wall_s,
                t.report.events,
                t.report.events as f64 / t.wall_s,
                t.num_requests as f64 / t.wall_s,
                t.report.served,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"model\": \"{}\",\n  \"memory\": \"{}\",\n  \"backend\": \"calendar\",\n  \
         \"record_mode\": \"aggregate\",\n  \"arrival_rate_per_s\": {ARRIVAL_RATE},\n  \
         \"backend_equivalence_n\": 10000,\n  \"backend_equivalence\": true,\n  \
         \"events_per_s_floor\": {EVENTS_PER_S_FLOOR},\n  \"tiers\": [\n{}\n  ],\n  \
         \"granularity_speedup_floor\": {GRANULARITY_SPEEDUP_FLOOR},\n  \
         \"granularity\": [\n{}\n  ]\n}}\n",
        model.name(),
        memory.kind(),
        tier_json.join(",\n"),
        gran_json.join(",\n"),
    );
    std::fs::create_dir_all("output")?;
    std::fs::write("output/BENCH_des.json", &json)?;
    println!("\nwrote output/BENCH_des.json");

    println!(
        "\nReading: the calendar queue pops in the same (time, seq) total order\n\
         as the heap (byte-identical reports above), so the only thing that\n\
         changes with n is wall time. Events/s holding roughly flat from 1e4\n\
         to 1e6 is the point: amortized O(1) scheduling plus pooled per-event\n\
         state means a million-request mixed-cluster run costs seconds, which\n\
         is what makes full lambda-sweeps of the paper's overlap results\n\
         testable at datacenter scale. The granularity axis shows the same\n\
         lever one level up: coalescing decode spans between scheduler\n\
         epochs removes the per-token queue round-trip entirely, with the\n\
         byte-identity gate proving the reports never notice."
    );
    Ok(())
}
