//! Capacity-planner search benchmark: what the analytical bound, the
//! calibration cache, and parallel probing each buy over a naive
//! exhaustive scan of the same candidate lattice.
//!
//! Four searches of one scenario — OPT-175B (compressed) on Optane
//! main memory, Poisson traffic against a fixed per-request SLO —
//! each returning a minimum-resource cluster configuration:
//!
//! 1. **exhaustive**: probe candidates level by level in lattice
//!    order with no bound, re-calibrating service models inside every
//!    probe (what `run_cluster_mix` does when called cold);
//! 2. **exhaustive+cache**: the same scan drawing service models from
//!    one shared [`CalibrationCache`];
//! 3. **planner (serial)**: [`helm_core::planner::plan`] at one
//!    thread — bound pruning + cache + first-confirmed early exit;
//! 4. **planner (parallel)**: the same at four threads.
//!
//! Hard gates (the run errors, not warns):
//!
//! * the planner must land on the same minimum replica count as the
//!   exhaustive scan, and both must confirm feasible — pruning may
//!   not change the answer, only the cost of finding it;
//! * `exhaustive / planner(serial)` wall time must clear
//!   [`SPEEDUP_FLOOR`];
//! * the planner's report must be byte-identical across one and four
//!   threads and across repeated runs (wall time zeroed first);
//! * the winner's full-length confirmation must meet the target with
//!   a clean conservation-audit ledger.
//!
//! Results land in `output/BENCH_planner.json`, with the cache,
//! pruning, and parallelism contributions reported separately.
//! `--quick` shrinks the lattice and request volume for CI smoke
//! runs.

use std::time::Instant;

use bench::section;
use helm_core::exec::RecordMode;
use helm_core::online::{
    run_cluster_mix, run_cluster_mix_cached, AdmissionPolicy, CalibrationCache, ClusterSpec,
    DeadlineSpec, PoissonArrivals, SchedulerKind, StepGranularity,
};
use helm_core::planner::{plan, PlanReport, PlanSpace, PlanTarget, SearchBudget, TrafficSpec};
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::time::SimDuration;
use workload::WorkloadSpec;

/// Hard floor on `exhaustive / planner(serial)` wall time. The bound
/// and the calibration cache together measure orders of magnitude
/// above this; 2x is the regression line the planner must never drop
/// below.
const SPEEDUP_FLOOR: f64 = 2.0;

/// Offered arrival rate, requests per second of simulated time.
const ARRIVAL_RATE: f64 = 0.06;

/// Per-request SLO. Sits at the feasibility knee of the scenario: one
/// replica cannot meet it, a three-replica mixed cluster can, so the
/// search has to climb levels and the bound has real work to do.
const SLO: SimDuration = SimDuration::from_millis_const(240_000.0);

/// Attainment target.
const TARGET: f64 = 0.9;

/// Arrival-process seed.
const SEED: u64 = 4242;

/// Outcome of one naive exhaustive scan.
struct NaiveOutcome {
    counts: Vec<usize>,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    probes: usize,
    attainment: f64,
    feasible: bool,
    wall_s: f64,
}

/// Every replica-count vector of length `templates` summing to
/// `total`, lexicographic — the same level enumeration the planner
/// schedules, re-derived here so the baseline shares its candidate
/// order without reaching into planner internals.
fn mixes_of(total: usize, templates: usize) -> Vec<Vec<usize>> {
    fn fill(out: &mut Vec<Vec<usize>>, current: &mut Vec<usize>, idx: usize, remaining: usize) {
        if idx + 1 == current.len() {
            current[idx] = remaining;
            out.push(current.clone());
            current[idx] = 0;
            return;
        }
        for take in 0..=remaining {
            current[idx] = take;
            fill(out, current, idx + 1, remaining - take);
        }
        current[idx] = 0;
    }
    let mut out = Vec::new();
    fill(&mut out, &mut vec![0usize; templates], 0, total);
    out
}

/// The naive baseline: walk the lattice cheapest level first in plain
/// enumeration order, probe every candidate (no bound), confirm the
/// first probe that clears the target — the planner's semantics with
/// all three perf layers stripped out. `cache` switches between cold
/// per-probe calibration and the shared memo.
fn naive_scan(
    servers: &[Server],
    workload: &WorkloadSpec,
    traffic: &TrafficSpec,
    space: &PlanSpace,
    mut cache: Option<&mut CalibrationCache>,
) -> Result<NaiveOutcome, Box<dyn std::error::Error>> {
    let started = Instant::now();
    let probe_n = space.probe_requests.min(traffic.num_requests);
    let mut probes = 0usize;
    let mut best: Option<(Vec<usize>, SchedulerKind, AdmissionPolicy, f64)> = None;
    let run = |counts: &[usize],
               scheduler: SchedulerKind,
               admission: AdmissionPolicy,
               n: usize,
               cache: &mut Option<&mut CalibrationCache>|
     -> Result<f64, Box<dyn std::error::Error>> {
        let groups: Vec<(&Server, usize)> = servers
            .iter()
            .zip(counts)
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| (s, c))
            .collect();
        let spec = ClusterSpec::new(1)
            .with_scheduler(scheduler)
            .with_admission(admission)
            .with_deadlines(traffic.deadlines)
            .with_record(RecordMode::Aggregate);
        let mut arrivals = PoissonArrivals::new(traffic.lambda, traffic.seed);
        let report = match cache {
            Some(memo) => run_cluster_mix_cached(&groups, workload, &mut arrivals, n, spec, memo)?,
            None => run_cluster_mix(&groups, workload, &mut arrivals, n, spec)?,
        };
        Ok(report.slo_attainment())
    };
    for total in 1..=space.max_replicas {
        for counts in mixes_of(total, space.templates.len()) {
            for &scheduler in &space.schedulers {
                for &admission in &space.admissions {
                    probes += 1;
                    let probed = run(&counts, scheduler, admission, probe_n, &mut cache)?;
                    if best.as_ref().is_none_or(|(_, _, _, b)| probed > *b) {
                        best = Some((counts.clone(), scheduler, admission, probed));
                    }
                    if probed >= TARGET {
                        let confirmed = run(
                            &counts,
                            scheduler,
                            admission,
                            traffic.num_requests,
                            &mut cache,
                        )?;
                        if confirmed >= TARGET {
                            return Ok(NaiveOutcome {
                                counts,
                                scheduler,
                                admission,
                                probes,
                                attainment: confirmed,
                                feasible: true,
                                wall_s: started.elapsed().as_secs_f64(),
                            });
                        }
                    }
                }
            }
        }
    }
    let (counts, scheduler, admission, _) = best.ok_or("empty lattice")?;
    let attainment = run(
        &counts,
        scheduler,
        admission,
        traffic.num_requests,
        &mut cache,
    )?;
    Ok(NaiveOutcome {
        counts,
        scheduler,
        admission,
        probes,
        attainment,
        feasible: false,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Debug-renders a plan report with the wall clocks zeroed, for
/// bit-identity comparison across thread counts and granularities.
fn fingerprint(report: &PlanReport) -> String {
    let mut clone = report.clone();
    clone.stats.wall_ms = 0.0;
    clone.confirm_wall_ms = 0.0;
    format!("{clone:?}")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    // Force conservation audits on in release so the confirmation
    // gate checks real ledgers, absorbing their cost in every
    // measured variant equally.
    simaudit::force_enable();

    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let policy = Policy::paper_default(&model, memory.kind()).with_compression(true);
    let server = Server::new(system, model.clone(), policy)?;

    let num_requests = if quick { 120 } else { 400 };
    let traffic =
        TrafficSpec::new(ARRIVAL_RATE, num_requests, SEED).with_deadlines(DeadlineSpec::Fixed(SLO));
    let mut space = PlanSpace::for_server(&server, &workload)?;
    space.max_replicas = if quick { 3 } else { 4 };
    space.probe_requests = 30;
    let target = PlanTarget::attainment(TARGET);
    let servers = space
        .templates
        .iter()
        .map(|t| server.reconfigured(t.placement, t.batch))
        .collect::<Result<Vec<_>, _>>()?;

    section("naive exhaustive scans (no bound)");
    let cold = naive_scan(&servers, &workload, &traffic, &space, None)?;
    let mut memo = CalibrationCache::new();
    let cached = naive_scan(&servers, &workload, &traffic, &space, Some(&mut memo))?;
    println!(
        "cold  : {} probes, {:.1} ms, feasible {} at {:?} ({}, {}), attainment {:.3}",
        cold.probes,
        cold.wall_s * 1000.0,
        cold.feasible,
        cold.counts,
        cold.scheduler,
        cold.admission,
        cold.attainment
    );
    println!(
        "cached: {} probes, {:.1} ms, {} calibration(s)",
        cached.probes,
        cached.wall_s * 1000.0,
        memo.calibrations()
    );

    section("planner (bound + cache + early exit)");
    let serial_budget = SearchBudget {
        threads: 1,
        max_evals: 0,
    };
    let parallel_budget = SearchBudget {
        threads: 4,
        max_evals: 0,
    };
    let serial = plan(&server, &workload, &traffic, target, &space, serial_budget)?;
    let serial_again = plan(&server, &workload, &traffic, target, &space, serial_budget)?;
    let parallel = plan(
        &server,
        &workload,
        &traffic,
        target,
        &space,
        parallel_budget,
    )?;
    println!(
        "serial  : {} probed + {} pruned of {} candidates, {:.1} ms, feasible {} at {:?} ({}, {})",
        serial.stats.evaluated,
        serial.stats.pruned,
        serial.candidates,
        serial.stats.wall_ms,
        serial.feasible,
        serial.chosen.counts,
        serial.chosen.scheduler,
        serial.chosen.admission
    );
    println!(
        "parallel: {} probed + {} pruned, {:.1} ms (4 threads)",
        parallel.stats.evaluated, parallel.stats.pruned, parallel.stats.wall_ms
    );

    section("confirmation granularity (coalesced vs per-step)");
    let mut step_space = space.clone();
    step_space.granularity = StepGranularity::PerStep;
    let per_step = plan(
        &server,
        &workload,
        &traffic,
        target,
        &step_space,
        serial_budget,
    )?;
    println!(
        "coalesced: {:.1} ms in {} confirmation(s); per-step: {:.1} ms in {}",
        serial.confirm_wall_ms,
        serial.confirmations,
        per_step.confirm_wall_ms,
        per_step.confirmations
    );

    section("gates");
    if !serial.feasible || !cold.feasible {
        return Err(format!(
            "scenario must be feasible for both searches (planner {}, exhaustive {})",
            serial.feasible, cold.feasible
        )
        .into());
    }
    if serial.attainment < TARGET {
        return Err(format!(
            "winner misses the SLO target on confirmation: {:.3} < {TARGET}",
            serial.attainment
        )
        .into());
    }
    let total_naive: usize = cold.counts.iter().sum();
    if serial.chosen.total_replicas() != total_naive {
        return Err(format!(
            "pruning changed the answer: planner uses {} replicas, exhaustive {}",
            serial.chosen.total_replicas(),
            total_naive
        )
        .into());
    }
    let audit = serial
        .confirmed
        .audit
        .as_ref()
        .ok_or("auditing was forced on but the confirmation has no ledger")?;
    if !audit.is_clean() {
        return Err(format!("confirmation audit ledger dirty: {audit}").into());
    }
    let reference = fingerprint(&serial);
    if fingerprint(&serial_again) != reference {
        return Err("planner diverged across repeated serial runs".into());
    }
    if fingerprint(&parallel) != reference {
        return Err("planner diverged between 1 and 4 threads".into());
    }
    if fingerprint(&per_step) != reference {
        return Err("planner diverged between per-step and coalesced granularity".into());
    }
    let serial_wall_s = serial.stats.wall_ms / 1000.0;
    let speedup_cache = cold.wall_s / cached.wall_s;
    let speedup_prune = cached.wall_s / serial_wall_s;
    let speedup_parallel = serial.stats.wall_ms / parallel.stats.wall_ms;
    let speedup_total = cold.wall_s / serial_wall_s;
    println!("speedup: cache {speedup_cache:.1}x, prune+exit {speedup_prune:.1}x, total {speedup_total:.1}x");
    println!("parallel 4t vs serial: {speedup_parallel:.2}x (informational)");
    if speedup_total < SPEEDUP_FLOOR {
        return Err(format!(
            "planner regressed: {speedup_total:.2}x over exhaustive is below the \
             {SPEEDUP_FLOOR}x floor"
        )
        .into());
    }
    println!("all gates passed");

    let slo_ms = SLO.as_millis();
    let json = format!(
        "{{\n  \"model\": \"{}\",\n  \"memory\": \"{}\",\n  \"lambda_per_s\": {ARRIVAL_RATE},\n  \
         \"num_requests\": {num_requests},\n  \"slo_ms\": {slo_ms},\n  \"target\": {TARGET},\n  \
         \"quick\": {quick},\n  \"lattice_candidates\": {},\n  \
         \"exhaustive\": {{\"probes\": {}, \"wall_ms\": {:.3}}},\n  \
         \"exhaustive_cached\": {{\"probes\": {}, \"wall_ms\": {:.3}, \"calibrations\": {}}},\n  \
         \"planner_serial\": {{\"evaluated\": {}, \"pruned\": {}, \"confirmations\": {}, \
         \"calibrations\": {}, \"wall_ms\": {:.3}, \"confirm_wall_ms\": {:.3}}},\n  \
         \"planner_parallel\": {{\"threads\": 4, \"wall_ms\": {:.3}}},\n  \
         \"granularity\": {{\"coalesced_confirm_wall_ms\": {:.3}, \
         \"per_step_confirm_wall_ms\": {:.3}, \"report_identical\": true}},\n  \
         \"speedup\": {{\"cache\": {speedup_cache:.2}, \"prune\": {speedup_prune:.2}, \
         \"parallel\": {speedup_parallel:.2}, \"total\": {speedup_total:.2}, \
         \"floor\": {SPEEDUP_FLOOR}}},\n  \
         \"winner\": {{\"total_replicas\": {}, \"counts\": {:?}, \"scheduler\": \"{}\", \
         \"admission\": \"{}\", \"attainment\": {:.6}, \"feasible\": {}, \
         \"thread_bit_identical\": true, \"audit_clean\": true}}\n}}\n",
        model.name(),
        memory.kind(),
        serial.candidates,
        cold.probes,
        cold.wall_s * 1000.0,
        cached.probes,
        cached.wall_s * 1000.0,
        memo.calibrations(),
        serial.stats.evaluated,
        serial.stats.pruned,
        serial.confirmations,
        serial.calibrations,
        serial.stats.wall_ms,
        serial.confirm_wall_ms,
        parallel.stats.wall_ms,
        serial.confirm_wall_ms,
        per_step.confirm_wall_ms,
        serial.chosen.total_replicas(),
        serial.chosen.counts,
        serial.chosen.scheduler,
        serial.chosen.admission,
        serial.attainment,
        serial.feasible,
    );
    std::fs::create_dir_all("output")?;
    std::fs::write("output/BENCH_planner.json", &json)?;
    println!("\nwrote output/BENCH_planner.json");

    println!(
        "\nReading: the cache column is what memoizing calibration buys a search\n\
         that still probes everything; the prune column is what the analytical\n\
         bound plus minimum-resource early exit buy on top; their product is\n\
         the total floor-gated speedup. The replica-count gate is the real\n\
         claim — the bound only removes candidates it can prove infeasible, so\n\
         the cheap search and the exhaustive one land on the same minimum."
    );
    Ok(())
}
