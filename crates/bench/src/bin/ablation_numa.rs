//! Ablation: NUMA node choice for host-resident data.
//!
//! Fig 3 measures both NUMA nodes and finds a counterintuitive
//! asymmetry: GPU→Optane *writes* are faster to the remote node
//! (mesh contention with inbound PCIe traffic on the GPU socket),
//! while reads are slightly faster locally. This ablation turns that
//! observation into a placement rule: keep weights (read-heavy)
//! GPU-local, but put an offloaded KV cache (write-heavy) on the
//! remote node.

use bench::{print_table, section};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::{NodePolicy, SystemConfig};
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn run(
    policy_node: NodePolicy,
    kv_offload: bool,
    batch: u32,
) -> Result<helm_core::RunReport, helm_core::HelmError> {
    run_split(policy_node, policy_node, kv_offload, batch)
}

fn run_split(
    weight_node: NodePolicy,
    kv_node: NodePolicy,
    kv_offload: bool,
    batch: u32,
) -> Result<helm_core::RunReport, helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram())
        .with_node_policy(weight_node)
        .with_kv_node_policy(kv_node);
    let policy = Policy::paper_default(&model, system.memory().kind())
        .with_placement(PlacementKind::AllCpu)
        .with_compression(true)
        .with_kv_offload(kv_offload)
        .with_batch_size(batch);
    Server::new(system, model, policy)?.run(&WorkloadSpec::paper_default())
}

fn main() -> Result<(), helm_core::HelmError> {
    section("read-dominated serving (resident KV, batch 44): node choice for weights");
    let mut rows = Vec::new();
    for (label, node) in [
        ("GPU-local (node 0)", NodePolicy::GpuLocal),
        ("remote (node 1)", NodePolicy::Remote),
        ("interleaved", NodePolicy::Interleaved),
    ] {
        let r = run(node, false, 44)?;
        rows.push((label.to_owned(), vec![r.tbt_ms(), r.throughput_tps()]));
    }
    print_table(&["node policy", "TBT(ms)", "tok/s"], &rows);

    section("write-heavy serving (offloaded KV, batch 128): split placements");
    let mut rows = Vec::new();
    for (label, weight_node, kv_node) in [
        ("all GPU-local", NodePolicy::GpuLocal, NodePolicy::GpuLocal),
        ("all remote", NodePolicy::Remote, NodePolicy::Remote),
        (
            "weights local / KV remote",
            NodePolicy::GpuLocal,
            NodePolicy::Remote,
        ),
        (
            "weights local / KV interleaved",
            NodePolicy::GpuLocal,
            NodePolicy::Interleaved,
        ),
    ] {
        let r = run_split(weight_node, kv_node, true, 128)?;
        rows.push((label.to_owned(), vec![r.tbt_ms(), r.throughput_tps()]));
    }
    print_table(&["placement", "TBT(ms)", "tok/s"], &rows);
    println!(
        "\nReading: for pure weight streaming the GPU-local node wins (reads\n\
         pay a small UPI toll remotely). With an offloaded KV cache the\n\
         preferences mix: decode still favors local reads, but the huge\n\
         prefill write-back rides the Fig 3b asymmetry -- the remote node\n\
         absorbs GPU writes ~25% faster -- so the split placement (weights\n\
         local, KV remote) delivers the best end-to-end throughput. The\n\
         paper's own characterization implies the rule without spelling\n\
         it out."
    );
    Ok(())
}
