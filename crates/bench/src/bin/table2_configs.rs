//! Table II: the model/memory configurations under evaluation, with
//! the capacity reasoning that motivates each pairing.

use bench::section;
use helm_core::placement::{ModelPlacement, Tier};
use helm_core::policy::Policy;
use hetmem::HostMemoryConfig;
use llm::weights::DType;
use llm::ModelConfig;

fn describe(model: &ModelConfig, configs: &[HostMemoryConfig]) {
    println!(
        "{} ({} decoder blocks, {} layers, {} FP16 / {} compressed)",
        model.name(),
        model.num_blocks(),
        model.num_layers(),
        model.weight_bytes_f16(),
        simcore::units::ByteSize::from_bytes(DType::Int4Grouped.bytes_for(model.total_params())),
    );
    println!(
        "{:<12} {:>10} {:>10} {:>8}   fits?",
        "label", "disk", "cpu", "gpu"
    );
    for cfg in configs {
        let policy = Policy::paper_default(model, cfg.kind());
        let placement = ModelPlacement::compute(model, &policy);
        let disk = placement.total_on(Tier::Disk);
        let cpu = placement.total_on(Tier::Cpu);
        let gpu = placement.total_on(Tier::Gpu);
        let cpu_cap = cfg.cpu_device().capacity();
        let fits = cpu <= cpu_cap
            && cfg
                .disk_device()
                .map(|d| disk <= d.capacity())
                .unwrap_or(disk == simcore::units::ByteSize::ZERO);
        println!(
            "{:<12} {:>10} {:>10} {:>8}   {} (host cap {})",
            cfg.kind().to_string(),
            disk.to_string(),
            cpu.to_string(),
            gpu.to_string(),
            if fits { "yes" } else { "NO" },
            cpu_cap,
        );
    }
    println!();
}

fn main() {
    section("Table II: model/memory configurations (uncompressed, paper-default policies)");
    describe(&ModelConfig::opt_30b(), &HostMemoryConfig::opt30b_set());
    describe(&ModelConfig::opt_175b(), &HostMemoryConfig::opt175b_set());
    println!(
        "OPT-175B exceeds 256 GB of DRAM (hence no DRAM row), but fits 1 TB of\n\
         Optane -- the premise of the paper's heterogeneous-memory evaluation."
    );
}
