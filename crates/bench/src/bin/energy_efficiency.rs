//! Extension: the abstract's energy-efficiency claim, quantified.
//!
//! "...demonstrating how careful data placement can effectively enable
//! the substitution of DRAM with high-capacity but slower memory,
//! improving overall system energy efficiency." We compare J/token for
//! a hypothetical 1 TB all-DRAM host (what OPT-175B would *need*
//! without heterogeneous memory) against the Optane configurations
//! with and without the paper's placement fixes.

use bench::{print_table, section};
use helm_core::energy::{assess, DRAM_STATIC_W_PER_GB, OPTANE_STATIC_W_PER_GB};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::dram::{DDR4_2933_SOCKET_READ, PER_STREAM};
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::units::ByteSize;
use workload::WorkloadSpec;

/// A hypothetical 1 TB all-DRAM host: capacity enough for OPT-175B
/// uncompressed, at DRAM speed and DRAM static power.
fn dram_1tb() -> HostMemoryConfig {
    HostMemoryConfig::custom_dram(ByteSize::from_tib(1.0), DDR4_2933_SOCKET_READ, PER_STREAM)
}

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();

    section("energy per token, OPT-175B (compressed), batch 1 and 44");
    let mut rows = Vec::new();
    for (label, memory, placement, batch) in [
        (
            "1TB DRAM, baseline, b=1",
            dram_1tb(),
            PlacementKind::Baseline,
            1u32,
        ),
        (
            "NVDRAM, baseline, b=1",
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            1,
        ),
        (
            "NVDRAM, HeLM, b=1",
            HostMemoryConfig::nvdram(),
            PlacementKind::Helm,
            1,
        ),
        (
            "1TB DRAM, All-CPU, b=44",
            dram_1tb(),
            PlacementKind::AllCpu,
            44,
        ),
        (
            "NVDRAM, All-CPU, b=44",
            HostMemoryConfig::nvdram(),
            PlacementKind::AllCpu,
            44,
        ),
        (
            "MemoryMode, All-CPU, b=44",
            HostMemoryConfig::memory_mode(),
            PlacementKind::AllCpu,
            44,
        ),
    ] {
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(placement)
            .with_compression(true)
            .with_batch_size(batch);
        let server = Server::new(SystemConfig::paper_platform(memory), model.clone(), policy)?;
        let report = server.run(&workload)?;
        let energy = assess(&report, server.system());
        rows.push((
            label.to_owned(),
            vec![
                energy.j_per_token(),
                energy.host_static_j / report.tokens_generated as f64,
                energy.host_dynamic_j / report.tokens_generated as f64,
                report.throughput_tps(),
            ],
        ));
    }
    print_table(
        &["config", "J/token", "host-static", "host-dyn", "tok/s"],
        &rows,
    );

    section("background power of the host memory itself");
    print_table(
        &["technology", "W/GB", "W for 1 TB"],
        &[
            (
                "DDR4 DRAM".to_owned(),
                vec![
                    DRAM_STATIC_W_PER_GB.as_w_per_gb(),
                    DRAM_STATIC_W_PER_GB.static_watts(ByteSize::from_gb(1000.0)),
                ],
            ),
            (
                "Optane DCPMM".to_owned(),
                vec![
                    OPTANE_STATIC_W_PER_GB.as_w_per_gb(),
                    OPTANE_STATIC_W_PER_GB.static_watts(ByteSize::from_gb(1000.0)),
                ],
            ),
        ],
    );
    println!(
        "\nReading: at matched capacity, Optane's background power is less than\n\
         half of DRAM's. HeLM/All-CPU close most of the performance gap, so\n\
         the substitution nets lower J/token at batch 44 -- the abstract's\n\
         energy-efficiency argument, quantified."
    );
    Ok(())
}
