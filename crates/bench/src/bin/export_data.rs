//! Exports the raw data behind every figure as CSV files, mirroring
//! the paper artifact's `output/` directory ("The raw data used for
//! the figures in this paper can be found in `output/` directory").
//!
//! ```text
//! cargo run -p bench --release --bin export_data [-- <out_dir>]
//! ```

use bench::run_serving;
use helm_core::metrics::{RunReport, Stage};
use helm_core::placement::PlacementKind;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use std::fmt::Write as _;
use std::path::Path;
use workload::WorkloadSpec;
use xfer::nvbandwidth;
use xfer::path::PathModel;

fn write(dir: &Path, name: &str, contents: &str) -> Result<(), Box<dyn std::error::Error>> {
    let path = dir.join(name);
    std::fs::write(&path, contents).map_err(|e| format!("writing {path:?}: {e}"))?;
    println!(
        "wrote {} ({} lines)",
        path.display(),
        contents.lines().count()
    );
    Ok(())
}

fn fig3(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let points = nvbandwidth::sweep(&PathModel::paper_system());
    let mut csv = String::from("direction,memory,node,buffer_bytes,gbps\n");
    for p in &points {
        let _ = writeln!(
            csv,
            "{:?},{},{},{},{:.4}",
            p.direction,
            p.memory.label(),
            p.node,
            p.buffer.as_u64(),
            p.gbps
        );
    }
    write(dir, "fig3_bandwidth.csv", &csv)
}

fn serving_rows(runs: &[(&str, RunReport)]) -> String {
    let mut csv = String::from("config,placement,batch,compressed,ttft_ms,tbt_ms,tokens_per_s\n");
    for (label, r) in runs {
        let _ = writeln!(
            csv,
            "{label},{},{},{},{:.3},{:.3},{:.5}",
            r.placement,
            r.batch,
            r.compressed,
            r.ttft_ms(),
            r.tbt_ms(),
            r.throughput_tps()
        );
    }
    csv
}

fn overlap_rows(runs: &[(&str, RunReport)]) -> String {
    let mut csv = String::from(
        "config,placement,batch,stage,mha_compute_ms,ffn_compute_ms,mha_load_ms,ffn_load_ms\n",
    );
    for (label, r) in runs {
        for stage in [Stage::Prefill, Stage::Decode] {
            let _ = writeln!(
                csv,
                "{label},{},{},{stage},{:.4},{:.4},{:.4},{:.4}",
                r.placement,
                r.batch,
                r.avg_compute(stage, LayerKind::Mha).as_millis(),
                r.avg_compute(stage, LayerKind::Ffn).as_millis(),
                r.avg_weight_transfer(stage, LayerKind::Mha).as_millis(),
                r.avg_weight_transfer(stage, LayerKind::Ffn).as_millis(),
            );
        }
    }
    csv
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "output".to_owned());
    let dir = Path::new(&out);
    std::fs::create_dir_all(dir)?;
    let ws = WorkloadSpec::paper_default();

    fig3(dir)?;

    // Fig 4: uncompressed serving matrix.
    let mut runs = Vec::new();
    for (model, batches, configs) in [
        (
            ModelConfig::opt_30b(),
            vec![1u32, 32],
            HostMemoryConfig::opt30b_set(),
        ),
        (
            ModelConfig::opt_175b(),
            vec![1, 8],
            HostMemoryConfig::opt175b_set(),
        ),
    ] {
        for batch in batches {
            for cfg in &configs {
                let label = format!("{}-{}", model.name(), cfg.kind());
                let report = run_serving(
                    model.clone(),
                    cfg.clone(),
                    PlacementKind::Baseline,
                    false,
                    batch,
                    &ws,
                )?;
                runs.push((label, report));
            }
        }
    }
    let borrowed: Vec<(&str, RunReport)> =
        runs.iter().map(|(l, r)| (l.as_str(), r.clone())).collect();
    write(dir, "fig4_serving.csv", &serving_rows(&borrowed))?;
    write(dir, "fig5_overlap.csv", &overlap_rows(&borrowed))?;

    // Figs 6-12: the compressed OPT-175B study.
    let mut runs = Vec::new();
    for (cfg, placement, batch) in [
        (HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1u32),
        (HostMemoryConfig::nvdram(), PlacementKind::Baseline, 8),
        (HostMemoryConfig::nvdram(), PlacementKind::Helm, 1),
        (HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 1),
        (HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 8),
        (HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 44),
        (HostMemoryConfig::memory_mode(), PlacementKind::Baseline, 1),
        (HostMemoryConfig::memory_mode(), PlacementKind::Helm, 1),
        (HostMemoryConfig::memory_mode(), PlacementKind::AllCpu, 44),
        (HostMemoryConfig::dram(), PlacementKind::Baseline, 1),
        (HostMemoryConfig::dram(), PlacementKind::Helm, 1),
        (HostMemoryConfig::dram(), PlacementKind::AllCpu, 44),
    ] {
        let label = cfg.kind().to_string();
        let report = run_serving(ModelConfig::opt_175b(), cfg, placement, true, batch, &ws)?;
        runs.push((label, report));
    }
    let borrowed: Vec<(&str, RunReport)> =
        runs.iter().map(|(l, r)| (l.as_str(), r.clone())).collect();
    write(dir, "fig11_12_serving.csv", &serving_rows(&borrowed))?;
    write(dir, "fig11_12_overlap.csv", &overlap_rows(&borrowed))?;

    // Fig 7a: the sawtooth, per-layer load latencies.
    let baseline = &borrowed[0].1;
    let mut csv = String::from("layer_index,load_ms\n");
    for (layer, load) in baseline.decode_load_profile() {
        let _ = writeln!(csv, "{layer},{:.4}", load.as_millis());
    }
    write(dir, "fig7a_sawtooth.csv", &csv)?;

    // Table IV / Fig 13: projections.
    let rows = helm_core::projection::table_iv(&ws)?;
    let mut csv = String::from(
        "policy,batch,stage,config,mha_compute_over_ffn_load,ffn_compute_over_mha_load\n",
    );
    for r in &rows {
        let _ = writeln!(
            csv,
            "{},{},{},{},{:.4},{:.4}",
            r.policy,
            r.batch,
            r.stage,
            r.config,
            r.mha_compute_over_ffn_load,
            r.ffn_compute_over_mha_load
        );
    }
    write(dir, "table4_overlap.csv", &csv)?;

    println!("\nAll figure data exported to {}/", dir.display());
    Ok(())
}
