//! Ablation: KV-cache offloading to the host tier (the related-work
//! combination the paper points at: "These approaches can be combined
//! with our work to further increase batch sizes").
//!
//! Offloading removes the KV cache from GPU memory — batches grow far
//! past All-CPU's 44 — but every MHA layer now *writes* its new
//! entries back over PCIe, which is exactly the path Fig 3b shows
//! collapsing on Optane (3.26 GB/s vs DRAM's 26 GB/s). The ablation
//! quantifies when the trade pays off on each memory technology.

use bench::{print_table, section};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();

    for memory in [
        HostMemoryConfig::dram(),
        HostMemoryConfig::memory_mode(),
        HostMemoryConfig::nvdram(),
    ] {
        section(&format!("All-CPU + KV offload on {}", memory.kind()));
        let system = SystemConfig::paper_platform(memory.clone());
        let base_policy = Policy::paper_default(&model, memory.kind())
            .with_placement(PlacementKind::AllCpu)
            .with_compression(true);

        let mut rows = Vec::new();
        // Resident KV at its maximum batch (44).
        let resident = Server::new(
            system.clone(),
            model.clone(),
            base_policy.clone().with_batch_size(44),
        )?
        .run(&workload)?;
        rows.push((
            "resident KV, b=44".to_owned(),
            vec![
                resident.tbt_ms(),
                resident.throughput_tps(),
                resident.total_d2h_bytes().as_gb(),
            ],
        ));

        // Offloaded KV at matched and much larger batches.
        for batch in [44u32, 128, 256] {
            let server = Server::new(
                system.clone(),
                model.clone(),
                base_policy
                    .clone()
                    .with_batch_size(batch)
                    .with_kv_offload(true),
            )?;
            let max = server.max_batch(&workload);
            if batch > max {
                rows.push((
                    format!("offloaded KV, b={batch}"),
                    vec![f64::NAN, f64::NAN, f64::NAN],
                ));
                continue;
            }
            let report = server.run(&workload)?;
            rows.push((
                format!("offloaded KV, b={batch}"),
                vec![
                    report.tbt_ms(),
                    report.throughput_tps(),
                    report.total_d2h_bytes().as_gb(),
                ],
            ));
        }
        print_table(&["config", "TBT(ms)", "tok/s", "D2H(GB)"], &rows);
    }

    section("write endurance under sustained KV write-back (NVDRAM)");
    let server = Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        Policy::paper_default(&ModelConfig::opt_175b(), hetmem::MemoryConfigKind::NvDram)
            .with_placement(PlacementKind::AllCpu)
            .with_compression(true)
            .with_batch_size(128)
            .with_kv_offload(true),
    )?;
    let report = server.run(&workload)?;
    let write_rate = simcore::units::Bandwidth::from_bytes_per_s(
        report.total_d2h_bytes().as_f64() / report.total_time.as_secs(),
    );
    let optane =
        hetmem::optane::OptaneDevice::with_capacity(simcore::units::ByteSize::from_tib(1.0));
    println!(
        "sustained KV write-back: {:.2} GB/s -> rated module endurance\n\
         consumed in {:.0} years (paper SS II-C: PCM write endurance is a\n\
         real budget, but serving-scale KV write-back does not threaten it;\n\
         bandwidth, not wear, is the binding constraint).",
        write_rate.as_gb_per_s(),
        optane.endurance_years(write_rate),
    );
    println!(
        "\nReading: on DRAM the write-back is cheap and giant batches win;\n\
         on NVDRAM the Fig 3b write collapse (~3 GB/s) makes each decode\n\
         step pay for its KV write-back, eroding (or erasing) the gain --\n\
         placement decisions must respect Optane's read/write asymmetry."
    );
    Ok(())
}
