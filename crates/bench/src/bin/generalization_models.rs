//! Extension: generalizing beyond OPT (the paper's §VII: "The
//! presented techniques may be generalized to other models ... by
//! adapting to their compute schedule and data movement costs").
//!
//! LLaMA-family models change two placement-relevant properties:
//! grouped-query attention shrinks the KV cache (lifting the All-CPU
//! batch ceiling), and the gated SwiGLU FFN is a three-matrix tensor
//! list for the allocators to walk.

use bench::{print_table, section};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let workload = WorkloadSpec::paper_default();
    let memory = HostMemoryConfig::nvdram();

    section("All-CPU batch ceilings: GQA lifts the KV wall");
    let mut rows = Vec::new();
    for model in [
        ModelConfig::opt_66b(),
        ModelConfig::llama_2_70b(),
        ModelConfig::llama_2_7b(),
        ModelConfig::llama_3_8b(),
    ] {
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(PlacementKind::AllCpu)
            .with_compression(true);
        let server = Server::new(
            SystemConfig::paper_platform(memory.clone()),
            model.clone(),
            policy,
        )?;
        let max = server.max_batch(&workload);
        let kv = llm::kv::kv_bytes_per_sequence(&model, workload.context_len());
        rows.push((
            format!("{} ({} kv-heads)", model.name(), model.num_kv_heads()),
            vec![model.weight_bytes_f16().as_gb(), kv.as_mb(), f64::from(max)],
        ));
    }
    print_table(&["model", "weights(GB)", "KV/seq(MB)", "max batch"], &rows);

    section("HeLM still balances the pipeline on gated-FFN models");
    let mut rows = Vec::new();
    for model in [ModelConfig::opt_66b(), ModelConfig::llama_2_70b()] {
        let mut tbt = Vec::new();
        for kind in [PlacementKind::Baseline, PlacementKind::Helm] {
            let policy = Policy::paper_default(&model, memory.kind())
                .with_placement(kind)
                .with_compression(true)
                .with_batch_size(1);
            let report = Server::new(
                SystemConfig::paper_platform(memory.clone()),
                model.clone(),
                policy,
            )?
            .run(&workload)?;
            tbt.push(report.tbt_ms());
        }
        rows.push((
            model.name().to_owned(),
            vec![tbt[0], tbt[1], (1.0 - tbt[1] / tbt[0]) * 100.0],
        ));
    }
    print_table(&["model", "base TBT", "HeLM TBT", "gain %"], &rows);
    println!(
        "\nReading: OPT-66B (MHA) tops out at far smaller batches than\n\
         LLaMA-2-70B (GQA) despite similar weight footprints -- the KV\n\
         cache, not the weights, walls the batch; and HeLM's balance carries\n\
         over to the three-matrix gated FFN unchanged."
    );
    Ok(())
}
