//! Figure 8: overlap of MHA/FFN compute with the transfer of FFN/MHA
//! weights in the prefill stage of OPT-175B with compression, at
//! batch sizes 1 and 8 — the imbalance HeLM fixes.

use bench::{print_comparisons, print_table, run_serving, section, Comparison};
use helm_core::metrics::Stage;
use helm_core::placement::PlacementKind;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let ws = WorkloadSpec::paper_default();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for batch in [1u32, 8] {
        let report = run_serving(
            ModelConfig::opt_175b(),
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            true,
            batch,
            &ws,
        )?;
        for stage in [Stage::Prefill, Stage::Decode] {
            let mha_c = report.avg_compute(stage, LayerKind::Mha).as_millis();
            let ffn_c = report.avg_compute(stage, LayerKind::Ffn).as_millis();
            let mha_l = report
                .avg_weight_transfer(stage, LayerKind::Mha)
                .as_millis();
            let ffn_l = report
                .avg_weight_transfer(stage, LayerKind::Ffn)
                .as_millis();
            rows.push((
                format!("b={batch} {stage}"),
                vec![mha_c, ffn_l, ffn_c, mha_l],
            ));
            if stage == Stage::Prefill {
                ratios.push((batch, mha_c / ffn_l, ffn_c / mha_l));
            }
        }
    }
    section("Fig 8: MHA/FFN compute vs opposite-kind weight transfer (NVDRAM, compressed)");
    print_table(
        &[
            "batch/stage",
            "MHA-c(ms)",
            "FFN-l(ms)",
            "FFN-c(ms)",
            "MHA-l(ms)",
        ],
        &rows,
    );

    section("Fig 8: the imbalance (paper: MHA compute overlapped with the LARGER transfer)");
    let (_, r1_mha_ffn, r1_ffn_mha) = ratios[0];
    let (_, r8_mha_ffn, r8_ffn_mha) = ratios[1];
    print_comparisons(&[
        Comparison::new("b=1 MHA-compute/FFN-load (Table IV)", 0.36, r1_mha_ffn, "x"),
        Comparison::new("b=1 FFN-compute/MHA-load (Table IV)", 1.86, r1_ffn_mha, "x"),
        Comparison::new("b=8 MHA-compute/FFN-load (Table IV)", 0.52, r8_mha_ffn, "x"),
        Comparison::new("b=8 FFN-compute/MHA-load (Table IV)", 3.07, r8_ffn_mha, "x"),
    ]);
    println!(
        "\nNote (paper Fig 8 caption): decode overlap at both batch sizes is nearly\n\
         identical to prefill at batch 1 -- visible in the table above."
    );
    Ok(())
}
