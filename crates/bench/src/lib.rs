//! # bench — experiment harnesses
//!
//! One binary per table and figure of the paper (see `src/bin/`),
//! plus criterion microbenchmarks of the simulator itself (`benches/`).
//! This library holds the shared plumbing: convenience runners over
//! the serving stack and paper-vs-measured report formatting.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p bench --release --bin all_experiments
//! ```

use helm_core::metrics::RunReport;
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use helm_core::HelmError;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

/// Builds and runs one serving configuration with the paper-default
/// distribution for the model/memory pair.
///
/// # Errors
///
/// Propagates placement-capacity failures; the batch check is skipped
/// so figure harnesses can probe edge configurations.
pub fn run_serving(
    model: ModelConfig,
    memory: HostMemoryConfig,
    placement: PlacementKind,
    compressed: bool,
    batch: u32,
    workload: &WorkloadSpec,
) -> Result<RunReport, HelmError> {
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(compressed)
        .with_batch_size(batch);
    let server = Server::new(SystemConfig::paper_platform(memory), model, policy)?;
    server.run_unchecked(workload)
}

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared.
    pub label: String,
    /// The paper's reported value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit suffix for display.
    pub unit: &'static str,
}

impl Comparison {
    /// Creates a row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Comparison {
            label: label.into(),
            paper,
            measured,
            unit,
        }
    }

    /// Relative deviation of measured from paper (fraction).
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            (self.measured - self.paper) / self.paper
        }
    }

    /// Whether the *shape* holds: same sign/side and within the given
    /// relative tolerance.
    pub fn within(&self, tolerance: f64) -> bool {
        self.deviation().abs() <= tolerance
    }
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
    println!("{}", "-".repeat(title.len() + 6));
}

/// Prints a block of paper-vs-measured rows with deviations.
pub fn print_comparisons(rows: &[Comparison]) {
    println!(
        "{:<52} {:>12} {:>12} {:>8}",
        "metric", "paper", "measured", "dev"
    );
    for row in rows {
        println!(
            "{:<52} {:>9.2} {:>2} {:>9.2} {:>2} {:>+7.1}%",
            row.label,
            row.paper,
            row.unit,
            row.measured,
            row.unit,
            row.deviation() * 100.0
        );
    }
}

/// Formats a fixed-width numeric table: header row plus rows of
/// (label, values).
pub fn print_table(headers: &[&str], rows: &[(String, Vec<f64>)]) {
    print!("{:<28}", headers[0]);
    for h in &headers[1..] {
        print!(" {h:>12}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<28}");
        for v in values {
            print!(" {v:>12.3}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helm_core::placement::PlacementKind;

    #[test]
    fn comparison_math() {
        let c = Comparison::new("x", 10.0, 12.0, "ms");
        assert!((c.deviation() - 0.2).abs() < 1e-12);
        assert!(c.within(0.25));
        assert!(!c.within(0.1));
    }

    #[test]
    fn runner_produces_report() {
        let report = run_serving(
            ModelConfig::opt_175b(),
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            true,
            1,
            &WorkloadSpec::paper_default(),
        )
        .unwrap();
        assert!(report.tbt_ms() > 0.0);
    }
}
