//! `helmsim` — command-line front end to the out-of-core LLM serving
//! simulator.
//!
//! ```text
//! helmsim serve    --model opt-175b --memory nvdram --placement helm --compress
//! helmsim serve    --pipelines 4 --scheduler jsq --continuous --lambda 0.1
//! helmsim maxbatch --model opt-175b --memory nvdram --placement all-cpu --compress
//! helmsim autoplace --objective throughput --memory nvdram
//! helmsim plan     --lambda 0.2 --slo-ms 60000 --target 0.9 --format json
//! helmsim energy   --model opt-175b --memory nvdram --placement all-cpu --batch 44
//! helmsim probe    --what bandwidth
//! helmsim list
//! ```

mod args;
mod commands;
mod select;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
helmsim — out-of-core LLM inference on heterogeeous memory (simulated)

USAGE:
  helmsim <command> [flags]

COMMANDS:
  serve       run one serving configuration, print TTFT/TBT/throughput
              (--pipelines switches to online cluster serving)
  maxbatch    solve the largest batch GPU memory allows
  autoplace   search per-layer-kind placements for a QoS objective
  plan        find the minimum-resource cluster meeting an SLO target
  energy      serve and report the energy breakdown (J/token)
  explain     per-layer kernel plan + transfer costing breakdown
  sweep       one-axis sweep (--axis batch|prompt|cxl)
  probe       platform characterization (--what bandwidth|mlc)
  trace-validate  check an exported chrome-trace file (--file)
  list        show accepted model/memory/placement names
  help        this message

COMMON FLAGS:
  --model <name>        (default opt-175b)
  --memory <name>       (default nvdram; cxl:<GB/s> for custom)
  --placement <name>    (default baseline)
  --batch <n>           (default 1)
  --gpu-batches <n>     micro-batches per weight load (default 1)
  --compress            store weights 4-bit group-quantized
  --kv-offload          keep the KV cache on the host tier
  --prompt <n>          input tokens (default 128)
  --gen <n>             output tokens (default 21)
  --csv <path>          also write the per-step timeline as CSV
  --trace-out <path>    serve/plan: export request span trees as
                        chrome-trace JSON (load in a trace viewer)
  --pipelines <n>       serve online through n pipeline replicas
  --scheduler <s>       cluster dispatch: rr|jsq (default rr)
  --continuous          admit requests at decode-step boundaries
  --lambda <r>          Poisson arrival rate, req/s (default 0.05)
  --requests <n>        requests to serve online (default 60)
  --seed <n>            arrival-process seed (default 42)
  --format <f>          serve/plan output: text|json (default text)
  --objective <o>       autoplace: latency|throughput (default latency)
  --threads <n>         autoplace/plan: search threads (default 0 = auto)
  --max-evals <n>       autoplace/plan: cap evaluations (0 = unlimited)
  --target <a>          plan: SLO-attainment target in [0,1] (default 0.95)
  --max-replicas <n>    plan: total replica cap (default 4)
  --probe-requests <n>  plan: requests per screening probe (default 200)
  --slo-ms <ms>         fixed per-request deadline (serve online / plan)
  --slo-tight-ms <ms>   plan: bimodal tight-class deadline
  --slo-loose-ms <ms>   plan: bimodal loose-class deadline
  --tight-frac <f>      plan: tight-class fraction (default 0.5)
  --what <w>            probe: bandwidth|mlc (default bandwidth)
  --axis <a>            sweep: batch|prompt|cxl (default batch)
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let parsed = match Args::parse(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(stray) = parsed.positional().first() {
        eprintln!("error: unexpected argument '{stray}' (flags use --name value)");
        return ExitCode::FAILURE;
    }
    let result = match command.as_str() {
        "serve" => commands::serve(&parsed),
        "maxbatch" => commands::maxbatch(&parsed),
        "autoplace" => commands::autoplace(&parsed),
        "plan" => commands::plan(&parsed),
        "energy" => commands::energy(&parsed),
        "probe" => commands::probe(&parsed),
        "explain" => commands::explain(&parsed),
        "sweep" => commands::sweep(&parsed),
        "trace-validate" => commands::trace_validate(&parsed),
        "list" => commands::list(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(args::ArgError(format!(
            "unknown command '{other}'; try 'helmsim help'"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
