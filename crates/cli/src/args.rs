//! Minimal dependency-free flag parsing.
//!
//! Supports `--flag value`, `--flag=value`, and boolean `--flag`
//! switches, with typed accessors and an unknown-flag check so typos
//! fail loudly.

use std::collections::BTreeMap;
use std::fmt;

/// A parse/validation failure, printed to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, Option<String>>,
    positional: Vec<String>,
}

impl Args {
    /// Parses raw tokens (without the program name).
    ///
    /// # Errors
    ///
    /// Rejects malformed flags (e.g. `---x`).
    pub fn parse<I, S>(tokens: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(body) = tok.strip_prefix("--") {
                if body.is_empty() || body.starts_with('-') {
                    return Err(ArgError(format!("malformed flag '{tok}'")));
                }
                if let Some((key, value)) = body.split_once('=') {
                    args.flags.insert(key.to_owned(), Some(value.to_owned()));
                } else {
                    // Take the next token as a value unless it is a flag.
                    let value = match iter.peek() {
                        Some(next) if !next.starts_with("--") => iter.next(),
                        _ => None,
                    };
                    args.flags.insert(body.to_owned(), value);
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).and_then(|v| v.as_deref())
    }

    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A boolean switch (present, with no value or `true`/`false`).
    ///
    /// # Errors
    ///
    /// Rejects non-boolean values.
    pub fn get_bool(&self, key: &str) -> Result<bool, ArgError> {
        match self.flags.get(key) {
            None => Ok(false),
            Some(None) => Ok(true),
            Some(Some(v)) => v
                .parse::<bool>()
                .map_err(|_| ArgError(format!("--{key} expects true/false, got '{v}'"))),
        }
    }

    /// A typed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Rejects unparsable values.
    pub fn get_num<T>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T: std::str::FromStr + Copy,
        T::Err: fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgError(format!("--{key}: cannot parse '{v}': {e}"))),
        }
    }

    /// Errors on flags outside `allowed` (typo protection).
    ///
    /// # Errors
    ///
    /// Lists the unknown flag and the allowed set.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flag_shapes() {
        let args = Args::parse(["pos", "--model", "opt-30b", "--batch=8", "--compress"]).unwrap();
        assert_eq!(args.get("model"), Some("opt-30b"));
        assert_eq!(args.get("batch"), Some("8"));
        assert!(args.get_bool("compress").unwrap());
        assert!(!args.get_bool("absent").unwrap());
        assert_eq!(args.positional(), ["pos"]);
        // A bare token after a switch binds to it as a value; use
        // `--flag=value` or place switches last to disambiguate.
        let greedy = Args::parse(["--compress", "pos"]).unwrap();
        assert!(greedy.get_bool("compress").is_err());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let args = Args::parse(["--batch", "12"]).unwrap();
        assert_eq!(args.get_num("batch", 1u32).unwrap(), 12);
        assert_eq!(args.get_num("missing", 7u32).unwrap(), 7);
        let bad = Args::parse(["--batch", "nope"]).unwrap();
        assert!(bad.get_num("batch", 1u32).is_err());
    }

    #[test]
    fn boolean_values_validate() {
        let args = Args::parse(["--kv-offload=true"]).unwrap();
        assert!(args.get_bool("kv-offload").unwrap());
        let bad = Args::parse(["--kv-offload=sideways"]).unwrap();
        assert!(bad.get_bool("kv-offload").is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let args = Args::parse(["--modle", "opt-30b"]).unwrap();
        let err = args.reject_unknown(&["model"]).unwrap_err();
        assert!(err.to_string().contains("--modle"));
        assert!(args.reject_unknown(&["modle"]).is_ok());
    }

    #[test]
    fn flag_followed_by_flag_is_a_switch() {
        let args = Args::parse(["--compress", "--batch", "4"]).unwrap();
        assert!(args.get_bool("compress").unwrap());
        assert_eq!(args.get("batch"), Some("4"));
    }

    #[test]
    fn malformed_flags_error() {
        assert!(Args::parse(["---x"]).is_err());
        assert!(Args::parse(["--"]).is_err());
    }

    #[test]
    fn get_or_defaults() {
        let args = Args::parse(["--memory", "nvdram"]).unwrap();
        assert_eq!(args.get_or("memory", "dram"), "nvdram");
        assert_eq!(args.get_or("placement", "baseline"), "baseline");
    }
}
