//! The `helmsim` subcommands.

use crate::args::{ArgError, Args};
use crate::select;
use helm_core::autoplace::{Objective, SearchBudget};
use helm_core::energy::assess;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use simcore::units::ByteSize;
use workload::WorkloadSpec;

const SERVE_FLAGS: &[&str] = &[
    "model",
    "memory",
    "placement",
    "batch",
    "gpu-batches",
    "compress",
    "kv-offload",
    "prompt",
    "gen",
    "csv",
    "audit",
    "pipelines",
    "scheduler",
    "continuous",
    "granularity",
    "lambda",
    "requests",
    "seed",
    "mix",
    "admission",
    "slo-ms",
    "format",
    "trace-out",
];

struct Session {
    server: Server,
    workload: WorkloadSpec,
}

/// Resolves `--format text|json`.
fn wants_json(args: &Args) -> Result<bool, ArgError> {
    match args.get_or("format", "text") {
        "text" => Ok(false),
        "json" => Ok(true),
        other => Err(ArgError(format!("unknown format '{other}'; text|json"))),
    }
}

/// Writes a collected trace as chrome-trace JSON; in text mode also
/// says where it went.
fn write_trace(path: &str, trace: &helm_core::trace::Trace, json: bool) -> Result<(), ArgError> {
    std::fs::write(path, trace.to_chrome_json())
        .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
    if !json {
        println!(
            "trace: wrote {} span(s) over {} request(s) to {path}",
            trace.span_count(),
            trace.requests.len()
        );
    }
    Ok(())
}

fn session(args: &Args) -> Result<Session, ArgError> {
    if args.get_bool("audit")? {
        // Auditing is a debug-build default; `--audit` extends it to
        // release binaries for the rest of the process.
        simaudit::force_enable();
    }
    let model = select::model(args.get_or("model", "opt-175b"))?;
    let memory = select::memory(args.get_or("memory", "nvdram"))?;
    let placement = select::placement(args.get_or("placement", "baseline"))?;
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(args.get_bool("compress")?)
        .with_kv_offload(args.get_bool("kv-offload")?)
        .with_batch_size(args.get_num("batch", 1u32)?)
        .with_gpu_batches(args.get_num("gpu-batches", 1u32)?);
    let workload = WorkloadSpec::new(
        args.get_num("prompt", 128usize)?,
        args.get_num("gen", 21usize)?,
        1,
    );
    let server = Server::new(SystemConfig::paper_platform(memory), model, policy)
        .map_err(|e| ArgError(e.to_string()))?;
    Ok(Session { server, workload })
}

/// `helmsim serve`.
pub fn serve(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(SERVE_FLAGS)?;
    if args.get("pipelines").is_some() || args.get("lambda").is_some() || args.get("mix").is_some()
    {
        return serve_online(args);
    }
    let json = wants_json(args)?;
    let Session { server, workload } = session(args)?;
    // Span collection composes with the normal run: the traced report
    // is byte-identical, so the printed numbers never depend on
    // whether a trace was requested.
    let report = match args.get("trace-out") {
        Some(path) => {
            let (report, trace) = server
                .run_traced(&workload)
                .map_err(|e| ArgError(e.to_string()))?;
            write_trace(path, &trace, json)?;
            report
        }
        None => server.run(&workload).map_err(|e| ArgError(e.to_string()))?,
    };
    let [disk, cpu, gpu] = report.achieved_distribution;
    if json {
        println!(
            "{{\"model\":\"{}\",\"memory\":\"{}\",\"placement\":\"{}\",\"batch\":{},\
             \"ttft_ms\":{:.3},\"tbt_ms\":{:.3},\"throughput_tps\":{:.6},\
             \"h2d_bytes\":{},\"d2h_bytes\":{},\
             \"compute_frac\":{:.6},\"transfer_frac\":{:.6},\
             \"weights_pct\":{{\"disk\":{disk:.3},\"cpu\":{cpu:.3},\"gpu\":{gpu:.3}}}}}",
            server.model().name(),
            server.system().memory().kind(),
            server.policy().placement().as_str(),
            server.policy().effective_batch(),
            report.ttft_ms(),
            report.tbt_ms(),
            report.throughput_tps(),
            report.total_h2d_bytes().as_u64(),
            report.total_d2h_bytes().as_u64(),
            report.attribution.compute_fraction(),
            report.attribution.transfer_fraction(),
        );
    } else {
        println!("{}", report.summary());
        println!("  TTFT        : {:>12.1} ms", report.ttft_ms());
        println!("  TBT         : {:>12.1} ms", report.tbt_ms());
        println!("  throughput  : {:>12.3} tok/s", report.throughput_tps());
        println!("  H2D traffic : {:>12}", report.total_h2d_bytes());
        println!("  D2H traffic : {:>12}", report.total_d2h_bytes());
        println!("  weights     : disk {disk:.1}% / cpu {cpu:.1}% / gpu {gpu:.1}%");
        println!(
            "  crit. path  : compute {:.1}% / transfer {:.1}%",
            report.attribution.compute_fraction() * 100.0,
            report.attribution.transfer_fraction() * 100.0
        );
        if let Some(audit) = &report.audit {
            for line in audit.to_string().lines() {
                println!("  {line}");
            }
        }
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, report.to_csv())
            .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        if !json {
            println!(
                "  timeline    : wrote {} steps to {path}",
                report.records.len()
            );
        }
    }
    Ok(())
}

/// One `--mix` replica group: placement, batch, replica count.
struct MixGroup {
    placement: helm_core::placement::PlacementKind,
    batch: u32,
    count: usize,
}

/// Parses `--mix helm:4,allcpu:44` (each entry `placement:batch`,
/// with an optional `xN` replica count as in `helm:4x2`).
fn parse_mix(spec: &str) -> Result<Vec<MixGroup>, ArgError> {
    let mut groups = Vec::new();
    for entry in spec.split(',') {
        let (name, rest) = entry.split_once(':').ok_or_else(|| {
            ArgError(format!(
                "bad --mix entry '{entry}' (expected placement:batch, e.g. helm:4)"
            ))
        })?;
        let placement = select::placement(name)?;
        let (batch, count) = match rest.split_once('x') {
            Some((b, n)) => (
                b.parse::<u32>()
                    .map_err(|e| ArgError(format!("bad batch in --mix entry '{entry}': {e}")))?,
                n.parse::<usize>().map_err(|e| {
                    ArgError(format!("bad replica count in --mix entry '{entry}': {e}"))
                })?,
            ),
            None => (
                rest.parse::<u32>()
                    .map_err(|e| ArgError(format!("bad batch in --mix entry '{entry}': {e}")))?,
                1,
            ),
        };
        if batch == 0 || count == 0 {
            return Err(ArgError(format!(
                "--mix entry '{entry}' needs a positive batch and replica count"
            )));
        }
        groups.push(MixGroup {
            placement,
            batch,
            count,
        });
    }
    Ok(groups)
}

/// `helmsim serve --pipelines N` / `--mix a:4,b:44`: online serving
/// through a cluster of pipeline replicas — identical or mixed —
/// under Poisson load, with optional deadlines and admission control.
fn serve_online(args: &Args) -> Result<(), ArgError> {
    use helm_core::online::{
        run_cluster, run_cluster_mix, run_cluster_mix_traced, run_cluster_traced, AdmissionPolicy,
        CalibrationCache, ClusterSpec, DeadlineSpec, PoissonArrivals, SchedulerKind,
        StepGranularity,
    };
    use simcore::time::SimDuration;

    let json = wants_json(args)?;
    let Session { server, workload } = session(args)?;
    let mix = args.get("mix").map(parse_mix).transpose()?;
    if mix.is_some() && args.get("pipelines").is_some() {
        return Err(ArgError(
            "--mix and --pipelines are mutually exclusive (the mix determines the cluster size)"
                .to_owned(),
        ));
    }
    let pipelines = args.get_num("pipelines", 1usize)?;
    if pipelines == 0 {
        return Err(ArgError("--pipelines must be at least 1".to_owned()));
    }
    let scheduler: SchedulerKind = args.get_or("scheduler", "rr").parse().map_err(ArgError)?;
    let granularity: StepGranularity = args
        .get_or("granularity", StepGranularity::default().as_str())
        .parse()
        .map_err(ArgError)?;
    let admission: AdmissionPolicy = args
        .get_or("admission", "accept")
        .parse()
        .map_err(ArgError)?;
    let deadlines = match args.get("slo-ms") {
        Some(_) => {
            let slo_ms = args.get_num("slo-ms", 0.0f64)?;
            if !(slo_ms.is_finite() && slo_ms > 0.0) {
                return Err(ArgError(format!(
                    "--slo-ms must be a positive deadline, got {slo_ms}"
                )));
            }
            DeadlineSpec::Fixed(SimDuration::from_millis(slo_ms))
        }
        None => DeadlineSpec::None,
    };
    let spec = ClusterSpec::new(pipelines)
        .with_scheduler(scheduler)
        .with_continuous(args.get_bool("continuous")?)
        .with_granularity(granularity)
        .with_admission(admission)
        .with_deadlines(deadlines);
    let lambda = args.get_num("lambda", 0.05f64)?;
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(ArgError(format!(
            "--lambda must be a positive arrival rate, got {lambda}"
        )));
    }
    let requests = args.get_num("requests", 60usize)?;
    let seed = args.get_num("seed", 42u64)?;
    let mut arrivals = PoissonArrivals::new(lambda, seed);

    let trace_out = args.get("trace-out");
    let (report, cluster_size) = match &mix {
        Some(groups) => {
            let servers = groups
                .iter()
                .map(|g| {
                    server
                        .reconfigured(g.placement, g.batch)
                        .map_err(|e| ArgError(e.to_string()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let refs: Vec<(&Server, usize)> = servers
                .iter()
                .zip(groups.iter())
                .map(|(s, g)| (s, g.count))
                .collect();
            // As offline: the traced report is byte-identical, so
            // `--trace-out` never perturbs what gets printed.
            let report = match trace_out {
                Some(path) => {
                    let (report, trace) = run_cluster_mix_traced(
                        &refs,
                        &workload,
                        &mut arrivals,
                        requests,
                        spec,
                        &mut CalibrationCache::new(),
                    )
                    .map_err(|e| ArgError(e.to_string()))?;
                    write_trace(path, &trace, json)?;
                    report
                }
                None => run_cluster_mix(&refs, &workload, &mut arrivals, requests, spec)
                    .map_err(|e| ArgError(e.to_string()))?,
            };
            (report, groups.iter().map(|g| g.count).sum::<usize>())
        }
        None => {
            let report = match trace_out {
                Some(path) => {
                    let (report, trace) =
                        run_cluster_traced(&server, &workload, &mut arrivals, requests, spec)
                            .map_err(|e| ArgError(e.to_string()))?;
                    write_trace(path, &trace, json)?;
                    report
                }
                None => run_cluster(&server, &workload, &mut arrivals, requests, spec)
                    .map_err(|e| ArgError(e.to_string()))?,
            };
            (report, pipelines)
        }
    };

    if json {
        let groups: Vec<String> = match &mix {
            Some(groups) => groups
                .iter()
                .map(|g| {
                    format!(
                        "{{\"placement\":\"{}\",\"batch\":{},\"replicas\":{}}}",
                        g.placement.as_str(),
                        g.batch,
                        g.count
                    )
                })
                .collect(),
            None => vec![format!(
                "{{\"placement\":\"{}\",\"batch\":{},\"replicas\":{pipelines}}}",
                server.policy().placement().as_str(),
                server.policy().effective_batch()
            )],
        };
        let pipes: Vec<String> = report
            .per_pipeline
            .iter()
            .map(|p| {
                format!(
                    "{{\"config\":{},\"served\":{},\"rejected\":{},\"expired\":{},\
                     \"batches\":{},\"busy_s\":{:.6},\"utilization\":{:.6}}}",
                    p.config,
                    p.served,
                    p.rejected,
                    p.expired,
                    p.batches,
                    p.busy.as_secs(),
                    p.utilization
                )
            })
            .collect();
        println!(
            "{{\"model\":\"{}\",\"memory\":\"{}\",\"scheduler\":\"{}\",\"admission\":\"{}\",\
             \"continuous\":{},\"granularity\":\"{}\",\
             \"lambda\":{lambda},\"requests\":{requests},\"seed\":{seed},\
             \"cluster_size\":{cluster_size},\"groups\":[{}],\
             \"served\":{},\"rejected\":{},\"expired\":{},\"met\":{},\"slo_violations\":{},\
             \"attainment\":{:.6},\"makespan_s\":{:.6},\"queue_delay_ms_mean\":{:.3},\
             \"e2e_p50_ms\":{:.3},\"e2e_p95_ms\":{:.3},\"tokens_per_s\":{:.6},\
             \"tokens_per_s_met\":{:.6},\"utilization\":{:.6},\
             \"queue_frac\":{:.6},\"compute_frac\":{:.6},\"transfer_frac\":{:.6},\
             \"pipelines\":[{}]}}",
            server.model().name(),
            server.system().memory().kind(),
            spec.scheduler.as_str(),
            admission,
            spec.continuous,
            spec.granularity.as_str(),
            groups.join(","),
            report.served,
            report.rejected,
            report.expired,
            report.met,
            report.slo_violations,
            report.slo_attainment(),
            report.makespan.as_secs(),
            report.mean_queue_delay_ms(),
            report.e2e_percentile_ms(50.0),
            report.e2e_percentile_ms(95.0),
            report.tokens_per_s,
            report.tokens_per_s_met,
            report.utilization,
            report.attribution.queue_fraction(),
            report.attribution.compute_fraction(),
            report.attribution.transfer_fraction(),
            pipes.join(",")
        );
        return Ok(());
    }
    println!(
        "{} on {}, {} pipeline(s), {} dispatch, {} admission, {} batching, {} events",
        server.model().name(),
        server.system().memory().kind(),
        cluster_size,
        spec.scheduler,
        admission,
        if spec.continuous {
            "continuous"
        } else {
            "run-to-completion"
        },
        spec.granularity,
    );
    match &mix {
        Some(groups) => {
            for (g, group) in groups.iter().enumerate() {
                println!(
                    "  config {g}    : {} b={} x{}",
                    group.placement, group.batch, group.count
                );
            }
        }
        None => println!(
            "  config 0    : {} b={} x{}",
            server.policy().placement(),
            server.policy().effective_batch(),
            pipelines
        ),
    }
    println!("  load        : lambda {lambda} req/s, {requests} requests, seed {seed}");
    if let DeadlineSpec::Fixed(slo) = deadlines {
        println!("  SLO         : {:>12.1} ms", slo.as_millis());
    }
    println!("  served      : {:>12}", report.served);
    if report.rejected > 0 || report.expired > 0 || !matches!(deadlines, DeadlineSpec::None) {
        println!("  rejected    : {:>12}", report.rejected);
        println!("  expired     : {:>12}", report.expired);
        println!(
            "  SLO met     : {:>12} ({} violated, attainment {:.3})",
            report.met,
            report.slo_violations,
            report.slo_attainment()
        );
    }
    println!("  makespan    : {:>12.1} s", report.makespan.as_secs());
    println!(
        "  queue delay : {:>12.1} ms mean",
        report.mean_queue_delay_ms()
    );
    println!(
        "  e2e latency : {:>12.1} ms p50 / {:.1} ms p95",
        report.e2e_percentile_ms(50.0),
        report.e2e_percentile_ms(95.0)
    );
    println!("  throughput  : {:>12.3} tok/s", report.tokens_per_s);
    if !matches!(deadlines, DeadlineSpec::None) {
        println!(
            "  goodput     : {:>12.3} tok/s (SLO-met)",
            report.tokens_per_s_met
        );
    }
    println!("  utilization : {:>12.3}", report.utilization);
    println!(
        "  crit. path  : queue {:.1}% / compute {:.1}% / transfer {:.1}%",
        report.attribution.queue_fraction() * 100.0,
        report.attribution.compute_fraction() * 100.0,
        report.attribution.transfer_fraction() * 100.0
    );
    for (i, p) in report.per_pipeline.iter().enumerate() {
        println!(
            "  pipe{i:<7} : cfg {} served {:>4}, rejected {:>3}, expired {:>3}, {} batches, busy {:.1} s, util {:.3}",
            p.config,
            p.served,
            p.rejected,
            p.expired,
            p.batches,
            p.busy.as_secs(),
            p.utilization
        );
    }
    if let Some(audit) = &report.audit {
        for line in audit.to_string().lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

/// `helmsim maxbatch`.
pub fn maxbatch(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(SERVE_FLAGS)?;
    let Session { server, workload } = session(args)?;
    let costs = server.resident_costs(&workload);
    println!("GPU-resident weights : {}", costs.weights);
    println!("prefetch staging     : {}", costs.staging);
    println!("KV per sequence      : {}", costs.kv_per_sequence);
    println!("max batch            : {}", server.max_batch(&workload));
    Ok(())
}

/// `helmsim autoplace`.
pub fn autoplace(args: &Args) -> Result<(), ArgError> {
    let mut allowed = SERVE_FLAGS.to_vec();
    allowed.extend(["objective", "threads", "max-evals"]);
    args.reject_unknown(&allowed)?;
    let objective = match args.get_or("objective", "latency") {
        "latency" => Objective::Latency,
        "throughput" => Objective::Throughput,
        other => {
            return Err(ArgError(format!(
                "unknown objective '{other}'; latency|throughput"
            )))
        }
    };
    let budget = SearchBudget {
        threads: args.get_num("threads", 0usize)?,
        max_evals: args.get_num("max-evals", 0usize)?,
    };
    let Session { server, workload } = session(args)?;
    let result = server
        .autoplace(&workload, objective, budget)
        .map_err(|e| ArgError(e.to_string()))?;
    println!(
        "winner: MHA {}% / FFN {}% on GPU, batch {}",
        result.mha_gpu_percent, result.ffn_gpu_percent, result.batch
    );
    println!("{}", result.report.summary());
    let stats = &result.stats;
    println!(
        "search: {} evaluated + {} pruned in {:.1} ms ({:.0} evals/s)",
        stats.evaluated,
        stats.pruned,
        stats.wall_ms,
        if stats.wall_ms > 0.0 {
            stats.evaluated as f64 / (stats.wall_ms / 1000.0)
        } else {
            0.0
        }
    );
    println!("pareto frontier (TBT-optimal to throughput-optimal):");
    println!("  MHA%   FFN%   batch     TBT(ms)       tok/s");
    for p in result.frontier.pareto() {
        println!(
            "  {:>4}  {:>5}  {:>6}  {:>10.1}  {:>10.3}",
            p.mha_gpu_percent, p.ffn_gpu_percent, p.batch, p.tbt_ms, p.throughput_tps
        );
    }
    Ok(())
}

/// `helmsim plan`: SLO-aware capacity planning — the minimum-resource
/// cluster configuration meeting an attainment target under Poisson
/// load, found by bound-pruned, calibration-cached, parallel search.
pub fn plan(args: &Args) -> Result<(), ArgError> {
    use helm_core::online::DeadlineSpec;
    use helm_core::planner::{self, PlanSpace, PlanTarget, TrafficSpec};
    use simcore::time::SimDuration;

    let mut allowed = SERVE_FLAGS.to_vec();
    allowed.extend([
        "target",
        "max-replicas",
        "probe-requests",
        "threads",
        "max-evals",
        "slo-tight-ms",
        "slo-loose-ms",
        "tight-frac",
    ]);
    args.reject_unknown(&allowed)?;
    let json = wants_json(args)?;
    let Session { server, workload } = session(args)?;

    let lambda = args.get_num("lambda", 0.05f64)?;
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(ArgError(format!(
            "--lambda must be a positive arrival rate, got {lambda}"
        )));
    }
    let requests = args.get_num("requests", 200usize)?;
    if requests == 0 {
        return Err(ArgError("--requests must be at least 1".to_owned()));
    }
    let seed = args.get_num("seed", 42u64)?;
    let target = args.get_num("target", 0.95f64)?;
    if !(0.0..=1.0).contains(&target) {
        return Err(ArgError(format!(
            "--target must be an attainment fraction in [0, 1], got {target}"
        )));
    }

    let positive_ms = |flag: &str| -> Result<SimDuration, ArgError> {
        let ms = args.get_num(flag, 0.0f64)?;
        if !(ms.is_finite() && ms > 0.0) {
            return Err(ArgError(format!(
                "--{flag} must be a positive deadline, got {ms}"
            )));
        }
        Ok(SimDuration::from_millis(ms))
    };
    let deadlines = if args.get("slo-tight-ms").is_some() || args.get("slo-loose-ms").is_some() {
        if args.get("slo-ms").is_some() {
            return Err(ArgError(
                "--slo-ms and --slo-tight-ms/--slo-loose-ms are mutually exclusive".to_owned(),
            ));
        }
        let tight = positive_ms("slo-tight-ms")?;
        let loose = positive_ms("slo-loose-ms")?;
        let tight_fraction = args.get_num("tight-frac", 0.5f64)?;
        if !(0.0..=1.0).contains(&tight_fraction) {
            return Err(ArgError(format!(
                "--tight-frac must be a fraction in [0, 1], got {tight_fraction}"
            )));
        }
        DeadlineSpec::Bimodal {
            tight,
            loose,
            tight_fraction,
            seed,
        }
    } else if args.get("slo-ms").is_some() {
        DeadlineSpec::Fixed(positive_ms("slo-ms")?)
    } else {
        DeadlineSpec::None
    };

    let traffic = TrafficSpec::new(lambda, requests, seed).with_deadlines(deadlines);
    let mut space =
        PlanSpace::for_server(&server, &workload).map_err(|e| ArgError(e.to_string()))?;
    space.max_replicas = args.get_num("max-replicas", space.max_replicas)?;
    if space.max_replicas == 0 {
        return Err(ArgError("--max-replicas must be at least 1".to_owned()));
    }
    space.probe_requests = args.get_num("probe-requests", space.probe_requests)?;
    if space.probe_requests == 0 {
        return Err(ArgError("--probe-requests must be at least 1".to_owned()));
    }
    space.continuous = args.get_bool("continuous")?;
    space.granularity = args
        .get_or("granularity", space.granularity.as_str())
        .parse()
        .map_err(ArgError)?;
    let budget = SearchBudget {
        threads: args.get_num("threads", 0usize)?,
        max_evals: args.get_num("max-evals", 0usize)?,
    };
    let report = planner::plan(
        &server,
        &workload,
        &traffic,
        PlanTarget::attainment(target),
        &space,
        budget,
    )
    .map_err(|e| ArgError(e.to_string()))?;
    if let Some(path) = args.get("trace-out") {
        // Replays the chosen configuration's confirmation run with
        // span collection on (the replay is deterministic in the
        // traffic seed, so it reproduces the judged run exactly).
        let (_, trace) = planner::replay_plan_traced(&server, &workload, &traffic, &space, &report)
            .map_err(|e| ArgError(e.to_string()))?;
        write_trace(path, &trace, json)?;
    }

    if json {
        let groups: Vec<String> = report
            .groups
            .iter()
            .map(|(t, count)| {
                format!(
                    "{{\"placement\":\"{}\",\"batch\":{},\"replicas\":{count}}}",
                    t.placement.as_str(),
                    t.batch
                )
            })
            .collect();
        println!(
            "{{\"model\":\"{}\",\"memory\":\"{}\",\"target\":{target},\
             \"lambda\":{lambda},\"requests\":{requests},\"seed\":{seed},\
             \"feasible\":{},\"attainment\":{:.6},\"probe_attainment\":{:.6},\
             \"total_replicas\":{},\"scheduler\":\"{}\",\"admission\":\"{}\",\
             \"groups\":[{}],\"candidates\":{},\"evaluated\":{},\"pruned\":{},\
             \"confirmations\":{},\"calibrations\":{},\"probe_requests\":{},\
             \"granularity\":\"{}\",\"wall_ms\":{:.3},\"confirm_wall_ms\":{:.3},\
             \"queue_frac\":{:.6},\"compute_frac\":{:.6},\"transfer_frac\":{:.6}}}",
            server.model().name(),
            server.system().memory().kind(),
            report.feasible,
            report.attainment,
            report.probe_attainment,
            report.chosen.total_replicas(),
            report.chosen.scheduler.as_str(),
            report.chosen.admission,
            groups.join(","),
            report.candidates,
            report.stats.evaluated,
            report.stats.pruned,
            report.confirmations,
            report.calibrations,
            report.probe_requests,
            space.granularity.as_str(),
            report.stats.wall_ms,
            report.confirm_wall_ms,
            report.attribution.queue_fraction(),
            report.attribution.compute_fraction(),
            report.attribution.transfer_fraction()
        );
        return Ok(());
    }

    println!(
        "plan: {} on {}, target attainment {target:.3}",
        server.model().name(),
        server.system().memory().kind()
    );
    println!("  traffic     : lambda {lambda} req/s, {requests} requests, seed {seed}");
    match deadlines {
        DeadlineSpec::None => println!("  SLO         : none (every request trivially met)"),
        DeadlineSpec::Fixed(slo) => println!("  SLO         : fixed {:.1} ms", slo.as_millis()),
        DeadlineSpec::Bimodal {
            tight,
            loose,
            tight_fraction,
            ..
        } => println!(
            "  SLO         : bimodal {:.1} ms ({:.0}%) / {:.1} ms",
            tight.as_millis(),
            tight_fraction * 100.0,
            loose.as_millis()
        ),
    }
    if report.feasible {
        println!(
            "  feasible    : yes (attainment {:.3} on the full confirmation run)",
            report.attainment
        );
    } else {
        println!(
            "  feasible    : no — best effort attains {:.3} on the full confirmation run",
            report.attainment
        );
    }
    println!(
        "  chosen      : {} replica(s), {} dispatch, {} admission",
        report.chosen.total_replicas(),
        report.chosen.scheduler,
        report.chosen.admission
    );
    for (t, count) in &report.groups {
        println!("  group       : {} b={} x{count}", t.placement, t.batch);
    }
    println!(
        "  probe       : attainment {:.3} over {}-request probes",
        report.probe_attainment, report.probe_requests
    );
    println!(
        "  search      : {} probed + {} pruned of {} candidates in {:.1} ms",
        report.stats.evaluated, report.stats.pruned, report.candidates, report.stats.wall_ms
    );
    println!(
        "  confirms    : {} full-length run(s) in {:.1} ms ({} events), {} calibration(s)",
        report.confirmations, report.confirm_wall_ms, space.granularity, report.calibrations
    );
    println!(
        "  crit. path  : queue {:.1}% / compute {:.1}% / transfer {:.1}%",
        report.attribution.queue_fraction() * 100.0,
        report.attribution.compute_fraction() * 100.0,
        report.attribution.transfer_fraction() * 100.0
    );
    if let Some(audit) = &report.confirmed.audit {
        for line in audit.to_string().lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

/// `helmsim energy`.
pub fn energy(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(SERVE_FLAGS)?;
    let Session { server, workload } = session(args)?;
    let report = server.run(&workload).map_err(|e| ArgError(e.to_string()))?;
    let energy = assess(&report, server.system());
    println!("{}", report.summary());
    println!("{energy}");
    Ok(())
}

/// `helmsim probe`.
pub fn probe(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["what"])?;
    match args.get_or("what", "bandwidth") {
        "bandwidth" => {
            let path = xfer::path::PathModel::paper_system();
            let points = xfer::nvbandwidth::sweep(&path);
            println!("host -> GPU (GB/s):");
            print!(
                "{}",
                xfer::nvbandwidth::to_table(&points, xfer::path::Direction::HostToGpu)
            );
            println!("\nGPU -> host (GB/s):");
            print!(
                "{}",
                xfer::nvbandwidth::to_table(&points, xfer::path::Direction::GpuToHost)
            );
        }
        "mlc" => {
            let report = hetmem::mlc::run(
                &hetmem::numa::NumaTopology::paper_system(),
                ByteSize::from_gb(1.0),
            );
            print!("{}", report.to_table());
        }
        other => return Err(ArgError(format!("unknown probe '{other}'; bandwidth|mlc"))),
    }
    Ok(())
}

/// `helmsim explain`: per-layer cost breakdown — the kernel plan and
/// the transfer costing for one decoder block.
pub fn explain(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(SERVE_FLAGS)?;
    let Session { server, workload } = session(args)?;
    let placement = server.effective_placement(&workload);
    let policy = server.policy().clone();
    let inputs = helm_core::exec::PipelineInputs {
        system: server.system(),
        model: server.model(),
        policy: &policy,
        placement: &placement,
        workload: &workload,
    };
    let cpu_ws = placement.total_on(helm_core::placement::Tier::Cpu);
    let disk_ws = placement.total_on(helm_core::placement::Tier::Disk);
    println!(
        "{} on {} [{} b={}{}], decode step:",
        server.model().name(),
        server.system().memory().kind(),
        policy.placement(),
        policy.effective_batch(),
        if policy.compressed() { " (c)" } else { "" },
    );
    for lp in placement.layers().iter().skip(1).take(2) {
        let layer = lp.layer();
        println!("\n[{}] layer {}", layer.kind(), layer.index());
        let plan =
            helm_core::exec::kernel_plan(&inputs, layer, helm_core::metrics::Stage::Decode, 1);
        for (name, k) in &plan {
            println!(
                "  kernel {name:<18} {:>10.3} ms",
                server.system().gpu().kernel_time(k).as_millis()
            );
        }
        let compute =
            helm_core::exec::compute_time(&inputs, layer, helm_core::metrics::Stage::Decode, 1);
        let load = helm_core::exec::load_time(&inputs, lp, cpu_ws, disk_ws)
            .map_err(|e| ArgError(e.to_string()))?;
        println!("  total compute      {:>10.3} ms", compute.as_millis());
        println!(
            "  weight transfer    {:>10.3} ms ({} offloaded)",
            load.as_millis(),
            lp.offloaded_bytes(placement.dtype()),
        );
        let bound = if load > compute { "memory" } else { "compute" };
        println!("  -> {bound}-bound when overlapped");
    }
    Ok(())
}

/// `helmsim sweep`: one-axis parameter sweeps.
pub fn sweep(args: &Args) -> Result<(), ArgError> {
    let mut allowed = SERVE_FLAGS.to_vec();
    allowed.push("axis");
    args.reject_unknown(&allowed)?;
    let axis = args.get_or("axis", "batch").to_owned();
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "point", "TTFT(ms)", "TBT(ms)", "tok/s"
    );
    let print_row = |label: String, r: &helm_core::RunReport| {
        println!(
            "{label:<16} {:>12.1} {:>12.1} {:>12.3}",
            r.ttft_ms(),
            r.tbt_ms(),
            r.throughput_tps()
        );
    };
    match axis.as_str() {
        "batch" => {
            let Session { server, workload } = session(args)?;
            let max = server.max_batch(&workload);
            let mut batch = 1u32;
            while batch <= max {
                let s = Server::new(
                    server.system().clone(),
                    server.model().clone(),
                    server.policy().clone().with_batch_size(batch),
                )
                .map_err(|e| ArgError(e.to_string()))?;
                let r = s.run(&workload).map_err(|e| ArgError(e.to_string()))?;
                print_row(format!("batch {batch}"), &r);
                if batch == max {
                    break;
                }
                batch = (batch * 2).min(max);
            }
        }
        "prompt" => {
            for prompt in [64usize, 128, 256, 512, 1024] {
                let mut forwarded = vec!["--prompt".to_owned(), prompt.to_string()];
                forwarded.extend(reconstruct_flags(args, &["prompt"]));
                let sub = Args::parse(forwarded)?;
                let Session { server, workload } = session(&sub)?;
                let r = server.run(&workload).map_err(|e| ArgError(e.to_string()))?;
                print_row(format!("prompt {prompt}"), &r);
            }
        }
        "cxl" => {
            for gbps in [4.0, 8.0, 16.0, 28.0, 48.0] {
                let mut forwarded = vec!["--memory".to_owned(), format!("cxl:{gbps}")];
                forwarded.extend(reconstruct_flags(args, &["memory"]));
                let sub = Args::parse(forwarded)?;
                let Session { server, workload } = session(&sub)?;
                let r = server.run(&workload).map_err(|e| ArgError(e.to_string()))?;
                print_row(format!("cxl {gbps} GB/s"), &r);
            }
        }
        other => {
            return Err(ArgError(format!(
                "unknown axis '{other}'; batch|prompt|cxl"
            )))
        }
    }
    Ok(())
}

/// Re-serializes the serve flags of `args`, skipping `except`.
fn reconstruct_flags(args: &Args, except: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for key in SERVE_FLAGS {
        if except.contains(key) {
            continue;
        }
        match (*key, args.get(key)) {
            ("compress" | "kv-offload" | "audit" | "continuous", _)
                if args.get_bool(key).unwrap_or(false) =>
            {
                out.push(format!("--{key}"));
            }
            (_, Some(value)) => {
                out.push(format!("--{key}"));
                out.push(value.to_owned());
            }
            _ => {}
        }
    }
    out
}

/// `helmsim trace-validate --file trace.json`: checks that an
/// exported chrome-trace file parses, that every event is a complete
/// `"X"` span with finite non-negative timestamps, and that spans on
/// each `(pid, tid)` track nest without overlap — the structural
/// contract CI holds `--trace-out` output to.
pub fn trace_validate(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["file"])?;
    let path = args
        .get("file")
        .ok_or_else(|| ArgError("trace-validate needs --file <trace.json>".to_owned()))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
    let stats = helm_core::trace::validate_chrome_trace(&text)
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    println!(
        "{path}: ok — {} event(s) across {} track(s), all nested",
        stats.events, stats.tracks
    );
    Ok(())
}

/// `helmsim list`.
pub fn list(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[])?;
    println!("models     : {}", select::MODELS.join(", "));
    println!("memories   : {}", select::MEMORIES.join(", "));
    println!("placements : {}", select::PLACEMENTS.join(", "));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn serve_small_model_end_to_end() {
        let args = parse(&["--model", "opt-1.3b", "--memory", "dram", "--gen", "3"]);
        serve(&args).unwrap();
    }

    #[test]
    fn serve_online_cluster_end_to_end() {
        let args = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--gen",
            "3",
            "--pipelines",
            "2",
            "--scheduler",
            "jsq",
            "--continuous",
            "--lambda",
            "0.5",
            "--requests",
            "8",
            "--seed",
            "7",
        ]);
        serve(&args).unwrap();
    }

    #[test]
    fn serve_online_validates_flags() {
        let zero = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--pipelines",
            "0",
        ]);
        assert!(serve(&zero).unwrap_err().to_string().contains("pipelines"));
        let sched = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--pipelines",
            "2",
            "--scheduler",
            "lifo",
        ]);
        assert!(serve(&sched).unwrap_err().to_string().contains("scheduler"));
        let lambda = parse(&["--model", "opt-1.3b", "--memory", "dram", "--lambda", "-1"]);
        assert!(serve(&lambda).unwrap_err().to_string().contains("lambda"));
        let gran = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--pipelines",
            "2",
            "--granularity",
            "fine",
        ]);
        assert!(serve(&gran)
            .unwrap_err()
            .to_string()
            .contains("granularity"));
    }

    #[test]
    fn serve_online_accepts_per_step_granularity() {
        let args = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--gen",
            "3",
            "--pipelines",
            "2",
            "--granularity",
            "per-step",
            "--lambda",
            "0.5",
            "--requests",
            "8",
            "--seed",
            "7",
        ]);
        serve(&args).unwrap();
    }

    #[test]
    fn serve_mix_cluster_end_to_end() {
        let args = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--gen",
            "3",
            "--mix",
            "helm:2,all-cpu:4x2",
            "--scheduler",
            "edf",
            "--admission",
            "deadline",
            "--slo-ms",
            "30000",
            "--lambda",
            "0.5",
            "--requests",
            "10",
            "--seed",
            "7",
        ]);
        serve(&args).unwrap();
    }

    #[test]
    fn serve_mix_validates_flags() {
        let base = ["--model", "opt-1.3b", "--memory", "dram"];
        let bad_entry = |mix: &str| {
            let mut v = base.to_vec();
            v.extend(["--mix", mix]);
            serve(&parse(&v)).unwrap_err().to_string()
        };
        assert!(bad_entry("helm").contains("placement:batch"));
        assert!(bad_entry("helm:0").contains("positive"));
        assert!(bad_entry("helm:2x0").contains("positive"));
        assert!(bad_entry("helm:abc").contains("batch"));
        assert!(bad_entry("tarot:4").contains("placement"));

        let conflict = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--mix",
            "helm:2",
            "--pipelines",
            "3",
        ]);
        assert!(serve(&conflict)
            .unwrap_err()
            .to_string()
            .contains("mutually exclusive"));

        let admission = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--lambda",
            "0.5",
            "--admission",
            "lottery",
        ]);
        assert!(serve(&admission)
            .unwrap_err()
            .to_string()
            .contains("admission"));

        let slo = parse(&[
            "--model", "opt-1.3b", "--memory", "dram", "--lambda", "0.5", "--slo-ms", "-5",
        ]);
        assert!(serve(&slo).unwrap_err().to_string().contains("slo-ms"));
    }

    #[test]
    fn plan_small_model_end_to_end() {
        let args = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--gen",
            "3",
            "--lambda",
            "0.5",
            "--requests",
            "20",
            "--probe-requests",
            "8",
            "--slo-ms",
            "30000",
            "--target",
            "0.9",
            "--max-replicas",
            "2",
            "--format",
            "json",
        ]);
        plan(&args).unwrap();
    }

    #[test]
    fn plan_validates_flags() {
        let base = ["--model", "opt-1.3b", "--memory", "dram", "--gen", "3"];
        let with = |extra: &[&str]| {
            let mut v = base.to_vec();
            v.extend_from_slice(extra);
            plan(&parse(&v)).unwrap_err().to_string()
        };
        assert!(with(&["--target", "1.5"]).contains("target"));
        assert!(with(&["--max-replicas", "0"]).contains("max-replicas"));
        assert!(with(&["--probe-requests", "0"]).contains("probe-requests"));
        assert!(with(&["--lambda", "-1"]).contains("lambda"));
        assert!(with(&["--slo-tight-ms", "100"]).contains("slo-loose-ms"));
        assert!(with(&[
            "--slo-ms",
            "100",
            "--slo-tight-ms",
            "50",
            "--slo-loose-ms",
            "500"
        ])
        .contains("mutually exclusive"));
        assert!(with(&[
            "--tight-frac",
            "2",
            "--slo-tight-ms",
            "50",
            "--slo-loose-ms",
            "500"
        ])
        .contains("tight-frac"));
        assert!(with(&["--format", "yaml"]).contains("format"));
    }

    #[test]
    fn serve_json_formats() {
        let offline = parse(&[
            "--model", "opt-1.3b", "--memory", "dram", "--gen", "3", "--format", "json",
        ]);
        serve(&offline).unwrap();
        let online = parse(&[
            "--model",
            "opt-1.3b",
            "--memory",
            "dram",
            "--gen",
            "3",
            "--lambda",
            "0.5",
            "--requests",
            "6",
            "--format",
            "json",
        ]);
        serve(&online).unwrap();
        let bad = parse(&[
            "--model", "opt-1.3b", "--memory", "dram", "--format", "yaml",
        ]);
        assert!(serve(&bad).unwrap_err().to_string().contains("format"));
    }

    #[test]
    fn maxbatch_reports() {
        let args = parse(&[
            "--model",
            "opt-175b",
            "--memory",
            "nvdram",
            "--placement",
            "all-cpu",
            "--compress",
        ]);
        maxbatch(&args).unwrap();
    }

    #[test]
    fn serve_rejects_unknown_flags() {
        let args = parse(&["--modle", "opt-30b"]);
        assert!(serve(&args).is_err());
    }

    #[test]
    fn serve_rejects_infeasible_configs() {
        // OPT-175B uncompressed on DRAM.
        let args = parse(&["--model", "opt-175b", "--memory", "dram"]);
        let err = serve(&args).unwrap_err();
        assert!(err.to_string().contains("cpu tier"));
    }

    #[test]
    fn energy_runs() {
        let args = parse(&["--model", "opt-1.3b", "--memory", "nvdram", "--gen", "3"]);
        energy(&args).unwrap();
    }

    #[test]
    fn probe_variants() {
        probe(&parse(&["--what", "mlc"])).unwrap();
        probe(&parse(&[])).unwrap();
        assert!(probe(&parse(&["--what", "tarot"])).is_err());
    }

    #[test]
    fn list_prints() {
        list(&parse(&[])).unwrap();
        assert!(list(&parse(&["--x", "1"])).is_err());
    }

    #[test]
    fn explain_runs_on_small_model() {
        let args = parse(&["--model", "opt-1.3b", "--memory", "nvdram", "--compress"]);
        explain(&args).unwrap();
    }

    #[test]
    fn sweep_axes_run_and_validate() {
        let batch = parse(&[
            "--model", "opt-1.3b", "--memory", "dram", "--gen", "2", "--axis", "batch",
        ]);
        sweep(&batch).unwrap();
        let cxl = parse(&["--model", "opt-1.3b", "--gen", "2", "--axis", "cxl"]);
        sweep(&cxl).unwrap();
        let bad = parse(&["--axis", "sideways"]);
        assert!(sweep(&bad).is_err());
    }

    #[test]
    fn reconstruct_flags_round_trips() {
        let args = parse(&["--model", "opt-1.3b", "--compress", "--batch", "4"]);
        let flags = reconstruct_flags(&args, &["batch"]);
        assert!(flags.contains(&"--model".to_owned()));
        assert!(flags.contains(&"--compress".to_owned()));
        assert!(!flags.contains(&"--batch".to_owned()));
    }

    #[test]
    fn csv_export_writes_file() {
        let dir = std::env::temp_dir().join("helmsim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeline.csv");
        let path_str = path.to_str().unwrap();
        let args = parse(&[
            "--model", "opt-1.3b", "--memory", "dram", "--gen", "2", "--csv", path_str,
        ]);
        serve(&args).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("token,"));
        std::fs::remove_file(&path).ok();
    }
}
