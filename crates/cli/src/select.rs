//! Name → configuration resolution shared by the subcommands.

use crate::args::ArgError;
use helm_core::placement::PlacementKind;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::units::Bandwidth;

/// Model names the CLI accepts.
pub const MODELS: &[&str] = &[
    "opt-125m", "opt-1.3b", "opt-6.7b", "opt-13b", "opt-30b", "opt-66b", "opt-175b",
];

/// Memory configuration names the CLI accepts.
pub const MEMORIES: &[&str] = &[
    "dram",
    "nvdram",
    "memory-mode",
    "ssd",
    "fsdax",
    "cxl-fpga",
    "cxl-asic",
    "cxl:<GB/s>",
];

/// Placement names the CLI accepts.
pub const PLACEMENTS: &[&str] = &["baseline", "helm", "all-cpu"];

/// Resolves a model name.
///
/// # Errors
///
/// Lists the accepted names on mismatch.
pub fn model(name: &str) -> Result<ModelConfig, ArgError> {
    Ok(match name {
        "opt-125m" => ModelConfig::opt_125m(),
        "opt-1.3b" => ModelConfig::opt_1_3b(),
        "opt-6.7b" => ModelConfig::opt_6_7b(),
        "opt-13b" => ModelConfig::opt_13b(),
        "opt-30b" => ModelConfig::opt_30b(),
        "opt-66b" => ModelConfig::opt_66b(),
        "opt-175b" => ModelConfig::opt_175b(),
        other => {
            return Err(ArgError(format!(
                "unknown model '{other}'; one of: {}",
                MODELS.join(", ")
            )))
        }
    })
}

/// Resolves a memory configuration name; `cxl:<GB/s>` builds a custom
/// expander.
///
/// # Errors
///
/// Lists the accepted names on mismatch.
pub fn memory(name: &str) -> Result<HostMemoryConfig, ArgError> {
    if let Some(rate) = name.strip_prefix("cxl:") {
        let gbps: f64 = rate
            .parse()
            .map_err(|_| ArgError(format!("bad CXL bandwidth '{rate}'")))?;
        if gbps <= 0.0 {
            return Err(ArgError("CXL bandwidth must be positive".into()));
        }
        return Ok(HostMemoryConfig::cxl_custom(Bandwidth::from_gb_per_s(gbps)));
    }
    Ok(match name {
        "dram" => HostMemoryConfig::dram(),
        "nvdram" => HostMemoryConfig::nvdram(),
        "memory-mode" | "mm" => HostMemoryConfig::memory_mode(),
        "ssd" => HostMemoryConfig::ssd(),
        "fsdax" => HostMemoryConfig::fsdax(),
        "cxl-fpga" => HostMemoryConfig::cxl_fpga(),
        "cxl-asic" => HostMemoryConfig::cxl_asic(),
        other => {
            return Err(ArgError(format!(
                "unknown memory '{other}'; one of: {}",
                MEMORIES.join(", ")
            )))
        }
    })
}

/// Resolves a placement-policy name.
///
/// # Errors
///
/// Lists the accepted names on mismatch.
pub fn placement(name: &str) -> Result<PlacementKind, ArgError> {
    name.parse().map_err(|_| {
        ArgError(format!(
            "unknown placement '{name}'; one of: {}",
            PLACEMENTS.join(", ")
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem::MemoryConfigKind;

    #[test]
    fn every_listed_model_resolves() {
        for name in MODELS {
            assert!(model(name).is_ok(), "{name}");
        }
        assert!(model("gpt-5").is_err());
    }

    #[test]
    fn every_listed_memory_resolves() {
        for name in MEMORIES.iter().filter(|n| !n.contains('<')) {
            assert!(memory(name).is_ok(), "{name}");
        }
        assert_eq!(memory("mm").unwrap().kind(), MemoryConfigKind::MemoryMode);
        assert!(memory("floppy").is_err());
    }

    #[test]
    fn custom_cxl_rates_parse() {
        let m = memory("cxl:12.5").unwrap();
        assert_eq!(m.kind(), MemoryConfigKind::CxlCustom);
        assert!(memory("cxl:-3").is_err());
        assert!(memory("cxl:fast").is_err());
    }

    #[test]
    fn placements_resolve() {
        for name in PLACEMENTS {
            assert!(placement(name).is_ok());
        }
        assert!(placement("magic").is_err());
    }
}
