//! KV-cache sizing.
//!
//! Each decoder block caches a key and a value vector (hidden-size
//! elements, FP16) per token per sequence. The paper's §V accounting:
//! "the KV cache ... occupies 47.98 MB for a batch size of 1 at the
//! maximum context length of 2048" per block (counting K or V of one
//! block as one 48 MiB plane), totalling 4.5 GB for all of OPT-175B.

use crate::config::ModelConfig;
use simcore::units::ByteSize;

/// Bytes of FP16 KV (K + V) one block caches per token per sequence.
/// Grouped-query attention shrinks this by `heads / kv_heads`.
pub fn kv_bytes_per_token_per_block(config: &ModelConfig) -> u64 {
    2 * config.kv_dim() as u64 * 2
}

/// KV bytes one sequence pins across all blocks at `context_len`.
pub fn kv_bytes_per_sequence(config: &ModelConfig, context_len: usize) -> ByteSize {
    ByteSize::from_bytes(
        config.num_blocks() as u64 * context_len as u64 * kv_bytes_per_token_per_block(config),
    )
}

/// KV bytes a whole batch pins at `context_len`.
pub fn kv_bytes_total(config: &ModelConfig, context_len: usize, batch: u32) -> ByteSize {
    kv_bytes_per_sequence(config, context_len) * u64::from(batch)
}

/// Hidden-state bytes one sequence carries between layers at
/// `context_len` (prefill moves the full sequence; decode one token).
pub fn hidden_bytes_per_sequence(config: &ModelConfig, context_len: usize) -> ByteSize {
    ByteSize::from_bytes(context_len as u64 * config.hidden_size() as u64 * 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt175b_matches_paper_accounting() {
        let cfg = ModelConfig::opt_175b();
        // Paper: 47.98 MB per self-attention block at context 2048 =
        // one 2048 x 12288 FP16 plane (K or V), i.e. 48 MiB.
        let per_block_single_plane = 2048u64 * cfg.hidden_size() as u64 * 2;
        assert!((per_block_single_plane as f64 / f64::from(1 << 20) - 48.0).abs() < 0.01);
        // Paper: total KV footprint 4.5 GB (per-plane accounting).
        let total_planes = ByteSize::from_bytes(per_block_single_plane * cfg.num_blocks() as u64);
        assert!((total_planes.as_gib() - 4.5).abs() < 0.01);
    }

    #[test]
    fn kv_scales_linearly() {
        let cfg = ModelConfig::opt_30b();
        let one = kv_bytes_per_sequence(&cfg, 149);
        let batch = kv_bytes_total(&cfg, 149, 32);
        assert_eq!(batch, one * 32u64);
        assert_eq!(kv_bytes_per_sequence(&cfg, 298).as_u64(), one.as_u64() * 2);
    }

    #[test]
    fn kv_is_orders_of_magnitude_below_weights() {
        // Paper §V: weights are 72x the KV cache per block at b=1.
        let cfg = ModelConfig::opt_175b();
        let kv = kv_bytes_per_sequence(&cfg, 2048).as_f64() / cfg.num_blocks() as f64;
        let block_weights = 12.0 * (cfg.hidden_size() as f64).powi(2) * 2.0;
        let ratio = block_weights / (kv / 2.0); // paper counts one plane
        assert!((ratio - 72.0).abs() < 3.0, "ratio {ratio}");
    }

    #[test]
    fn gqa_shrinks_kv_by_the_group_factor() {
        // LLaMA-2-70B: 64 query heads over 8 KV heads -> 8x smaller
        // cache per token than an MHA model of the same width.
        let llama = ModelConfig::llama_2_70b();
        let mha_equiv = ModelConfig::custom(
            "mha-equiv",
            8192,
            64,
            64,
            80,
            28672,
            true,
            false,
            32000,
            4096,
        );
        assert_eq!(
            kv_bytes_per_token_per_block(&mha_equiv),
            8 * kv_bytes_per_token_per_block(&llama)
        );
    }

    #[test]
    fn hidden_state_is_tiny() {
        let cfg = ModelConfig::opt_175b();
        let h = hidden_bytes_per_sequence(&cfg, 149);
        assert!(h < ByteSize::from_mb(4.0));
    }
}
