//! # llm — transformer model descriptions and quantization
//!
//! Architecture-exact descriptions of the OPT model family (the
//! paper serves OPT-30B and OPT-175B) and everything placement and
//! cost models need to know about them:
//!
//! * [`config`] — model hyperparameters and presets.
//! * [`weights`] — per-layer weight-tensor specifications in FlexGen's
//!   declaration order. Placement fidelity depends on this order: the
//!   paper's achieved distributions ((0,80,20) → (0,91.7,8.3)) emerge
//!   from cumulative-midpoint allocation over exactly these lists.
//! * [`layers`] — the layer sequence (input embedding, alternating
//!   MHA/FFN, output embedding) with FLOP and byte accounting for
//!   prefill and decode.
//! * [`kv`] — KV-cache sizing.
//! * [`quant`] — group-wise 4-bit quantization: both the *size model*
//!   used by placement and a real bit-packing implementation with
//!   round-trip error bounds (property-tested).
//!
//! # Examples
//!
//! ```
//! use llm::config::ModelConfig;
//!
//! let opt175b = ModelConfig::opt_175b();
//! assert_eq!(opt175b.num_blocks(), 96);
//! assert_eq!(opt175b.hidden_size(), 12288);
//! // 96 x 2 hidden layers + 2 embedding layers = 194 (paper §III-B).
//! assert_eq!(opt175b.num_layers(), 194);
//! ```

pub mod config;
pub mod kv;
pub mod layers;
pub mod quant;
pub mod weights;

pub use config::ModelConfig;
pub use layers::{Layer, LayerKind};
pub use quant::GroupQuant;
pub use weights::{DType, WeightKind, WeightSpec};
