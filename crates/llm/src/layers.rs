//! The layer sequence and per-layer cost accounting.
//!
//! FlexGen's schedule walks a flat layer list: input embedding, then
//! MHA and FFN alternating per decoder block, then output embedding
//! (paper Listing 1 / §III-B). Each layer knows its weight specs and
//! can report the FLOPs and HBM traffic of its prefill (GEMM over the
//! whole prompt) and decode (GEMV over one token plus KV-cache
//! attention) computations — the inputs to the GPU kernel models.

use crate::config::ModelConfig;
use crate::weights::{DType, WeightSpec};
use simcore::units::ByteSize;

/// The four layer classes in FlexGen's flattened model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Token + position embedding lookup.
    InputEmbed,
    /// Multi-head attention half of a decoder block.
    Mha,
    /// Feed-forward half of a decoder block.
    Ffn,
    /// Final norm + LM head.
    OutputEmbed,
}

impl LayerKind {
    /// Whether this is one of the per-block hidden layers.
    pub fn is_hidden(self) -> bool {
        matches!(self, LayerKind::Mha | LayerKind::Ffn)
    }
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LayerKind::InputEmbed => "embed-in",
            LayerKind::Mha => "MHA",
            LayerKind::Ffn => "FFN",
            LayerKind::OutputEmbed => "embed-out",
        })
    }
}

/// One layer of the flattened model.
///
/// # Examples
///
/// ```
/// use llm::{Layer, LayerKind, ModelConfig};
///
/// let layers = Layer::sequence(&ModelConfig::opt_175b());
/// assert_eq!(layers.len(), 194);
/// assert_eq!(layers[0].kind(), LayerKind::InputEmbed);
/// assert_eq!(layers[1].kind(), LayerKind::Mha);
/// assert_eq!(layers[2].kind(), LayerKind::Ffn);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    kind: LayerKind,
    index: usize,
    block: Option<usize>,
    config: ModelConfig,
}

impl Layer {
    /// The full layer sequence for `config`.
    pub fn sequence(config: &ModelConfig) -> Vec<Layer> {
        let mut layers = Vec::with_capacity(config.num_layers());
        layers.push(Layer {
            kind: LayerKind::InputEmbed,
            index: 0,
            block: None,
            config: config.clone(),
        });
        for b in 0..config.num_blocks() {
            for kind in [LayerKind::Mha, LayerKind::Ffn] {
                layers.push(Layer {
                    kind,
                    index: layers.len(),
                    block: Some(b),
                    config: config.clone(),
                });
            }
        }
        layers.push(Layer {
            kind: LayerKind::OutputEmbed,
            index: layers.len(),
            block: None,
            config: config.clone(),
        });
        layers
    }

    /// Layer class.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Position in the flattened sequence.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Decoder block this layer belongs to, if any.
    pub fn block(&self) -> Option<usize> {
        self.block
    }

    /// The layer's weight tensors in FlexGen declaration order.
    pub fn weight_specs(&self) -> Vec<WeightSpec> {
        match self.kind {
            LayerKind::InputEmbed => WeightSpec::input_embed_specs(&self.config),
            LayerKind::Mha => WeightSpec::mha_specs(&self.config),
            LayerKind::Ffn => WeightSpec::ffn_specs(&self.config),
            LayerKind::OutputEmbed => WeightSpec::output_embed_specs(&self.config),
        }
    }

    /// Total weight bytes at `dtype`.
    pub fn weight_bytes(&self, dtype: DType) -> ByteSize {
        WeightSpec::total_bytes(&self.weight_specs(), dtype)
    }

    /// Matrix-multiply FLOPs for processing `tokens` positions
    /// (`batch * seq_len` in prefill, `batch` in decode), excluding
    /// attention-score work.
    pub fn matmul_flops(&self, tokens: u64) -> f64 {
        let h = self.config.hidden_size() as f64;
        let kv = self.config.kv_dim() as f64;
        let inter = self.config.ffn_intermediate() as f64;
        let t = tokens as f64;
        match self.kind {
            // Q + output projections (h x h) and K/V (h x kv_dim).
            LayerKind::Mha => 2.0 * t * (2.0 * h * h + 2.0 * h * kv),
            // MLP: up + down; gated FFN adds the gate projection.
            LayerKind::Ffn => {
                let matrices = if self.config.gated_ffn() { 3.0 } else { 2.0 };
                2.0 * t * matrices * inter * h
            }
            // Lookups are bandwidth, not FLOPs.
            LayerKind::InputEmbed => 0.0,
            // LM head: h x vocab GEMM.
            LayerKind::OutputEmbed => 2.0 * t * h * self.config.vocab_size() as f64,
        }
    }

    /// Attention-score FLOPs (Q·K^T and scores·V) for `batch`
    /// sequences attending over `context_len` cached positions with
    /// `new_tokens` query positions each.
    pub fn attention_flops(&self, batch: u32, new_tokens: usize, context_len: usize) -> f64 {
        if self.kind != LayerKind::Mha {
            return 0.0;
        }
        let h = self.config.hidden_size() as f64;
        2.0 * 2.0 * f64::from(batch) * new_tokens as f64 * context_len as f64 * h
    }

    /// KV-cache bytes the attention of this layer streams for `batch`
    /// sequences over `context_len` positions.
    pub fn kv_read_bytes(&self, batch: u32, context_len: usize) -> ByteSize {
        if self.kind != LayerKind::Mha {
            return ByteSize::ZERO;
        }
        ByteSize::from_bytes(
            u64::from(batch)
                * context_len as u64
                * crate::kv::kv_bytes_per_token_per_block(&self.config),
        )
    }

    /// Activation bytes read+written by the layer for `tokens`
    /// positions (hidden in, hidden out at FP16).
    pub fn activation_bytes(&self, tokens: u64) -> ByteSize {
        let h = self.config.hidden_size() as u64;
        match self.kind {
            LayerKind::Ffn => {
                // Expands to the FFN width in the middle (twice for
                // gated variants: gate and up activations).
                let lanes = if self.config.gated_ffn() { 2 } else { 1 };
                ByteSize::from_bytes(
                    tokens * 2 * (2 * h + lanes * self.config.ffn_intermediate() as u64),
                )
            }
            _ => ByteSize::from_bytes(tokens * h * 2 * 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_shape_matches_flexgen() {
        let cfg = ModelConfig::opt_30b();
        let layers = Layer::sequence(&cfg);
        assert_eq!(layers.len(), 98);
        assert_eq!(layers.first().unwrap().kind(), LayerKind::InputEmbed);
        assert_eq!(layers.last().unwrap().kind(), LayerKind::OutputEmbed);
        let hidden = layers.iter().filter(|l| l.kind().is_hidden()).count();
        assert_eq!(hidden, 96);
        // Blocks alternate MHA, FFN.
        assert_eq!(layers[1].kind(), LayerKind::Mha);
        assert_eq!(layers[2].kind(), LayerKind::Ffn);
        assert_eq!(layers[1].block(), Some(0));
        assert_eq!(layers[3].block(), Some(1));
    }

    #[test]
    fn ffn_has_twice_the_flops_of_mha() {
        let cfg = ModelConfig::opt_175b();
        let layers = Layer::sequence(&cfg);
        let mha = &layers[1];
        let ffn = &layers[2];
        let ratio = ffn.matmul_flops(128) / mha.matmul_flops(128);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn indices_are_contiguous() {
        let layers = Layer::sequence(&ModelConfig::opt_125m());
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn attention_costs_only_on_mha() {
        let cfg = ModelConfig::opt_175b();
        let layers = Layer::sequence(&cfg);
        assert!(layers[1].attention_flops(1, 128, 128) > 0.0);
        assert_eq!(layers[2].attention_flops(1, 128, 128), 0.0);
        assert!(layers[1].kv_read_bytes(1, 149) > ByteSize::ZERO);
        assert_eq!(layers[2].kv_read_bytes(1, 149), ByteSize::ZERO);
    }

    #[test]
    fn weight_bytes_by_kind() {
        let cfg = ModelConfig::opt_175b();
        let layers = Layer::sequence(&cfg);
        let mha = layers[1].weight_bytes(DType::F16);
        let ffn = layers[2].weight_bytes(DType::F16);
        assert!((ffn.as_f64() / mha.as_f64() - 2.0).abs() < 0.01);
        // Compressed sizes from §V: MHA ~0.302 GB, FFN ~0.604 GB.
        let mha_c = layers[1].weight_bytes(DType::Int4Grouped);
        let ffn_c = layers[2].weight_bytes(DType::Int4Grouped);
        assert!((mha_c.as_gb() - 0.34).abs() < 0.02, "mha_c {mha_c}");
        assert!((ffn_c.as_gb() - 0.68).abs() < 0.02, "ffn_c {ffn_c}");
    }

    #[test]
    fn activation_bytes_expand_in_ffn() {
        let cfg = ModelConfig::opt_30b();
        let layers = Layer::sequence(&cfg);
        assert!(layers[2].activation_bytes(128) > layers[1].activation_bytes(128));
    }
}
