//! Group-wise quantization (Q-BERT-style, as used by FlexGen).
//!
//! FlexGen compresses FP16 weights to 4 bits with group-wise
//! min/scale quantization [paper §IV-B, citing Shen et al.]: elements
//! are split into fixed-size groups; each group stores a minimum and
//! a scale at FP16 plus packed 4-bit codes. That reduces "the model
//! size to nearly a quarter with a negligible loss in accuracy".
//!
//! Two layers live here:
//!
//! * a **size model** ([`GroupQuant::compressed_bytes`]) used by the
//!   placement and transfer-cost machinery, and
//! * a **real implementation** ([`GroupQuant::quantize`] /
//!   [`GroupQuant::dequantize`]) with bit-packing and a provable
//!   round-trip error bound of half a quantization step, exercised by
//!   property tests.

/// Group-wise quantization parameters.
///
/// # Examples
///
/// ```
/// use llm::GroupQuant;
///
/// let q = GroupQuant::default(); // 4-bit, groups of 64
/// let data: Vec<f32> = (0..256).map(|i| i as f32 / 17.0).collect();
/// let tensor = q.quantize(&data);
/// let restored = q.dequantize(&tensor);
/// for (a, b) in data.iter().zip(&restored) {
///     assert!((a - b).abs() <= tensor.max_error() + 1e-6);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupQuant {
    bits: u8,
    group_size: usize,
}

impl Default for GroupQuant {
    /// FlexGen's configuration: 4 bits, groups of 64.
    fn default() -> Self {
        GroupQuant {
            bits: 4,
            group_size: 64,
        }
    }
}

/// A quantized tensor: packed codes plus per-group metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    config: GroupQuant,
    len: usize,
    packed: Vec<u8>,
    /// Per-group (min, scale) pairs, stored as f32 here; the size
    /// model charges them at FP16.
    groups: Vec<(f32, f32)>,
}

impl GroupQuant {
    /// A custom configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is in 1..=8 and `group_size` is positive.
    pub fn new(bits: u8, group_size: usize) -> Self {
        assert!((1..=8).contains(&bits), "bits must be 1..=8");
        assert!(group_size > 0, "group size must be positive");
        GroupQuant { bits, group_size }
    }

    /// Quantized bits per element.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Elements per quantization group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Storage bytes for `elems` elements: packed codes plus two FP16
    /// metadata values per group.
    pub fn compressed_bytes(&self, elems: u64) -> u64 {
        let code_bits = elems * u64::from(self.bits);
        let code_bytes = code_bits.div_ceil(8);
        let groups = elems.div_ceil(self.group_size as u64);
        code_bytes + groups * 4
    }

    /// Compression ratio versus FP16 storage.
    pub fn ratio_vs_f16(&self) -> f64 {
        let elems = 1_000_000u64;
        self.compressed_bytes(elems) as f64 / (elems * 2) as f64
    }

    /// Quantizes `data` group-wise.
    pub fn quantize(&self, data: &[f32]) -> QuantizedTensor {
        let levels = (1u32 << self.bits) - 1;
        let mut packed = vec![0u8; (data.len() * self.bits as usize).div_ceil(8)];
        let mut groups = Vec::with_capacity(data.len().div_ceil(self.group_size));
        for (g, chunk) in data.chunks(self.group_size).enumerate() {
            let min = chunk.iter().copied().fold(f32::INFINITY, f32::min);
            let max = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let scale = if max > min {
                (max - min) / levels as f32
            } else {
                0.0
            };
            groups.push((min, scale));
            for (i, &x) in chunk.iter().enumerate() {
                let code = if scale > 0.0 {
                    (((x - min) / scale).round() as u32).min(levels)
                } else {
                    0
                };
                let elem_index = g * self.group_size + i;
                let bit_index = elem_index * self.bits as usize;
                Self::write_bits(&mut packed, bit_index, self.bits, code);
            }
        }
        QuantizedTensor {
            config: *self,
            len: data.len(),
            packed,
            groups,
        }
    }

    /// Reconstructs the FP32 values of `tensor`.
    pub fn dequantize(&self, tensor: &QuantizedTensor) -> Vec<f32> {
        assert_eq!(*self, tensor.config, "mismatched quantizer config");
        let mut out = Vec::with_capacity(tensor.len);
        for i in 0..tensor.len {
            let (min, scale) = tensor.groups[i / self.group_size];
            let code = Self::read_bits(&tensor.packed, i * self.bits as usize, self.bits);
            out.push(min + scale * code as f32);
        }
        out
    }

    fn write_bits(buf: &mut [u8], bit_index: usize, bits: u8, value: u32) {
        for b in 0..bits as usize {
            let bit = (value >> b) & 1;
            let idx = bit_index + b;
            if bit == 1 {
                buf[idx / 8] |= 1 << (idx % 8);
            }
        }
    }

    fn read_bits(buf: &[u8], bit_index: usize, bits: u8) -> u32 {
        let mut value = 0u32;
        for b in 0..bits as usize {
            let idx = bit_index + b;
            let bit = (buf[idx / 8] >> (idx % 8)) & 1;
            value |= u32::from(bit) << b;
        }
        value
    }
}

impl QuantizedTensor {
    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Actual packed storage size in bytes (codes + metadata at the
    /// size model's FP16 accounting).
    pub fn storage_bytes(&self) -> usize {
        self.packed.len() + self.groups.len() * 4
    }

    /// The worst-case absolute reconstruction error: half a
    /// quantization step of the widest group.
    pub fn max_error(&self) -> f32 {
        self.groups
            .iter()
            .map(|&(_, scale)| scale / 2.0)
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_model_is_nearly_a_quarter() {
        // Paper: "reducing the model size to nearly a quarter".
        let q = GroupQuant::default();
        let ratio = q.ratio_vs_f16();
        assert!((ratio - 0.28125).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn round_trip_error_within_half_step() {
        let q = GroupQuant::default();
        let data: Vec<f32> = (0..1000).map(|i| ((i * 37) % 113) as f32 - 56.0).collect();
        let t = q.quantize(&data);
        let back = q.dequantize(&t);
        let bound = t.max_error() + 1e-5;
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn constant_groups_are_exact() {
        let q = GroupQuant::default();
        let data = vec![3.5f32; 200];
        let t = q.quantize(&data);
        assert_eq!(t.max_error(), 0.0);
        assert_eq!(q.dequantize(&t), data);
    }

    #[test]
    fn ragged_tail_group_handled() {
        let q = GroupQuant::new(4, 64);
        let data: Vec<f32> = (0..70).map(|i| i as f32).collect();
        let t = q.quantize(&data);
        assert_eq!(t.len(), 70);
        let back = q.dequantize(&t);
        assert_eq!(back.len(), 70);
    }

    #[test]
    fn storage_matches_size_model() {
        let q = GroupQuant::default();
        let data = vec![1.0f32; 4096];
        let t = q.quantize(&data);
        assert_eq!(t.storage_bytes() as u64, q.compressed_bytes(4096));
    }

    #[test]
    fn eight_bit_is_more_precise_than_two_bit() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
        let e8 = GroupQuant::new(8, 64).quantize(&data).max_error();
        let e2 = GroupQuant::new(2, 64).quantize(&data).max_error();
        assert!(e8 < e2);
    }

    #[test]
    fn empty_tensor_round_trips() {
        let q = GroupQuant::default();
        let t = q.quantize(&[]);
        assert!(t.is_empty());
        assert_eq!(q.dequantize(&t), Vec::<f32>::new());
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn invalid_bits_rejected() {
        let _ = GroupQuant::new(9, 64);
    }

    #[test]
    #[should_panic(expected = "mismatched quantizer")]
    fn config_mismatch_panics() {
        let t = GroupQuant::new(4, 64).quantize(&[1.0]);
        let _ = GroupQuant::new(4, 32).dequantize(&t);
    }
}
