//! Per-layer weight-tensor specifications.
//!
//! The specs mirror FlexGen's OPT implementation (`flex_opt.py`): each
//! layer owns an ordered list of named tensors, and the allocator in
//! the serving engine walks that list computing cumulative-size
//! midpoints (paper Listing 2). **Order matters**: the paper's
//! achieved distributions — e.g. the output projection being the only
//! MHA matrix to land on the GPU under (0, 80, 20) — fall out of this
//! declaration order.

use crate::config::ModelConfig;
use simcore::units::ByteSize;

/// Element type of a stored tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 16-bit floating point (FlexGen's serving default).
    F16,
    /// 32-bit floating point.
    F32,
    /// Group-wise 4-bit quantized (see [`crate::quant`]).
    Int4Grouped,
}

impl DType {
    /// Storage bytes for `elems` elements of this type, including
    /// quantization metadata where applicable.
    pub fn bytes_for(self, elems: u64) -> u64 {
        match self {
            DType::F16 => elems * 2,
            DType::F32 => elems * 4,
            DType::Int4Grouped => crate::quant::GroupQuant::default().compressed_bytes(elems),
        }
    }
}

/// Functional class of a weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightKind {
    /// A dense projection matrix.
    Linear,
    /// A bias vector.
    Bias,
    /// Layer-norm gain/bias.
    Norm,
    /// Token or position embedding table.
    Embedding,
}

/// One weight tensor of one layer.
///
/// # Examples
///
/// ```
/// use llm::{ModelConfig, WeightSpec};
///
/// let specs = WeightSpec::mha_specs(&ModelConfig::opt_175b());
/// assert_eq!(specs.len(), 10); // 4 matrices, 4 biases, 1 layernorm pair
/// assert_eq!(specs[0].name(), "w_q");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WeightSpec {
    name: &'static str,
    elems: u64,
    kind: WeightKind,
}

impl WeightSpec {
    fn new(name: &'static str, elems: u64, kind: WeightKind) -> Self {
        WeightSpec { name, elems, kind }
    }

    /// Tensor name (FlexGen naming).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Element count.
    pub fn elems(&self) -> u64 {
        self.elems
    }

    /// Functional class.
    pub fn kind(&self) -> WeightKind {
        self.kind
    }

    /// Storage bytes at `dtype`. Biases and norms stay FP16 under
    /// compression (FlexGen quantizes matrices only).
    pub fn bytes(&self, dtype: DType) -> ByteSize {
        let effective = match (dtype, self.kind) {
            (DType::Int4Grouped, WeightKind::Linear | WeightKind::Embedding) => DType::Int4Grouped,
            (DType::Int4Grouped, _) => DType::F16,
            (other, _) => other,
        };
        ByteSize::from_bytes(effective.bytes_for(self.elems))
    }

    /// The attention layer's tensors in FlexGen order:
    /// `w_q, b_q, w_k, b_k, w_v, b_v, w_out, b_out, w_ln, b_ln`.
    /// Under GQA the K/V projections are `hidden x kv_dim`; bias-free
    /// models (LLaMA family) omit the bias vectors and the norm bias.
    pub fn mha_specs(config: &ModelConfig) -> Vec<WeightSpec> {
        let h = config.hidden_size() as u64;
        let kv = config.kv_dim() as u64;
        let mut specs = Vec::with_capacity(10);
        if config.has_biases() {
            specs.push(WeightSpec::new("w_q", h * h, WeightKind::Linear));
            specs.push(WeightSpec::new("b_q", h, WeightKind::Bias));
            specs.push(WeightSpec::new("w_k", h * kv, WeightKind::Linear));
            specs.push(WeightSpec::new("b_k", kv, WeightKind::Bias));
            specs.push(WeightSpec::new("w_v", h * kv, WeightKind::Linear));
            specs.push(WeightSpec::new("b_v", kv, WeightKind::Bias));
            specs.push(WeightSpec::new("w_out", h * h, WeightKind::Linear));
            specs.push(WeightSpec::new("b_out", h, WeightKind::Bias));
            specs.push(WeightSpec::new("w_ln", h, WeightKind::Norm));
            specs.push(WeightSpec::new("b_ln", h, WeightKind::Norm));
        } else {
            specs.push(WeightSpec::new("w_q", h * h, WeightKind::Linear));
            specs.push(WeightSpec::new("w_k", h * kv, WeightKind::Linear));
            specs.push(WeightSpec::new("w_v", h * kv, WeightKind::Linear));
            specs.push(WeightSpec::new("w_out", h * h, WeightKind::Linear));
            specs.push(WeightSpec::new("w_ln", h, WeightKind::Norm));
        }
        specs
    }

    /// The feed-forward layer's tensors in FlexGen order. OPT-style
    /// MLP: `wi, bi, wo, bo, w_ln, b_ln` (`wi`: h→4h, `wo`: 4h→h).
    /// Gated (SwiGLU): `wg, wi, wo, w_ln` with no biases.
    pub fn ffn_specs(config: &ModelConfig) -> Vec<WeightSpec> {
        let h = config.hidden_size() as u64;
        let inter = config.ffn_intermediate() as u64;
        if config.gated_ffn() {
            let mut specs = vec![
                WeightSpec::new("wg", inter * h, WeightKind::Linear),
                WeightSpec::new("wi", inter * h, WeightKind::Linear),
                WeightSpec::new("wo", inter * h, WeightKind::Linear),
                WeightSpec::new("w_ln", h, WeightKind::Norm),
            ];
            if config.has_biases() {
                specs.push(WeightSpec::new("b_ln", h, WeightKind::Norm));
            }
            specs
        } else {
            vec![
                WeightSpec::new("wi", inter * h, WeightKind::Linear),
                WeightSpec::new("bi", inter, WeightKind::Bias),
                WeightSpec::new("wo", inter * h, WeightKind::Linear),
                WeightSpec::new("bo", h, WeightKind::Bias),
                WeightSpec::new("w_ln", h, WeightKind::Norm),
                WeightSpec::new("b_ln", h, WeightKind::Norm),
            ]
        }
    }

    /// The input-embedding layer's tensors: token and position tables.
    pub fn input_embed_specs(config: &ModelConfig) -> Vec<WeightSpec> {
        let h = config.hidden_size() as u64;
        vec![
            WeightSpec::new(
                "w_token",
                config.vocab_size() as u64 * h,
                WeightKind::Embedding,
            ),
            WeightSpec::new(
                "w_pos",
                (config.max_seq_len() as u64 + 2) * h,
                WeightKind::Embedding,
            ),
        ]
    }

    /// The output-embedding layer's tensors: final norm + LM head
    /// (tied to the token table in OPT, but transferred separately by
    /// FlexGen).
    pub fn output_embed_specs(config: &ModelConfig) -> Vec<WeightSpec> {
        let h = config.hidden_size() as u64;
        vec![
            WeightSpec::new("w_ln", h, WeightKind::Norm),
            WeightSpec::new("b_ln", h, WeightKind::Norm),
            WeightSpec::new(
                "w_token",
                config.vocab_size() as u64 * h,
                WeightKind::Embedding,
            ),
        ]
    }

    /// Total bytes of a spec list at `dtype`.
    pub fn total_bytes(specs: &[WeightSpec], dtype: DType) -> ByteSize {
        specs.iter().map(|s| s.bytes(dtype)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mha_is_one_third_of_block_weights() {
        // MHA: 4h^2 matrices; FFN: 8h^2 -> MHA is ~1/3 of a block.
        let cfg = ModelConfig::opt_175b();
        let mha = WeightSpec::total_bytes(&WeightSpec::mha_specs(&cfg), DType::F16);
        let ffn = WeightSpec::total_bytes(&WeightSpec::ffn_specs(&cfg), DType::F16);
        let ratio = mha.as_f64() / (mha + ffn).as_f64();
        assert!((ratio - 1.0 / 3.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn opt175b_block_size_matches_paper_scale() {
        // Paper §V: a decoder block's weights occupy ~3.38 GB (their
        // accounting) / 3.62 GB (exact 12 h^2 x 2 B math).
        let cfg = ModelConfig::opt_175b();
        let block = WeightSpec::total_bytes(&WeightSpec::mha_specs(&cfg), DType::F16)
            + WeightSpec::total_bytes(&WeightSpec::ffn_specs(&cfg), DType::F16);
        assert!((block.as_gb() - 3.62).abs() < 0.02, "block {block}");
    }

    #[test]
    fn compression_quarters_matrices_but_not_norms() {
        let cfg = ModelConfig::opt_175b();
        let specs = WeightSpec::mha_specs(&cfg);
        let wq = &specs[0];
        let ratio = wq.bytes(DType::Int4Grouped).as_f64() / wq.bytes(DType::F16).as_f64();
        assert!(ratio < 0.30, "matrices compress to ~28% of FP16: {ratio}");
        let ln = specs.iter().find(|s| s.name() == "w_ln").unwrap();
        assert_eq!(ln.bytes(DType::Int4Grouped), ln.bytes(DType::F16));
    }

    #[test]
    fn flexgen_declaration_order_is_stable() {
        let cfg = ModelConfig::opt_30b();
        let names: Vec<_> = WeightSpec::mha_specs(&cfg)
            .iter()
            .map(WeightSpec::name)
            .collect();
        assert_eq!(
            names,
            ["w_q", "b_q", "w_k", "b_k", "w_v", "b_v", "w_out", "b_out", "w_ln", "b_ln"]
        );
        let ffn: Vec<_> = WeightSpec::ffn_specs(&cfg)
            .iter()
            .map(WeightSpec::name)
            .collect();
        assert_eq!(ffn, ["wi", "bi", "wo", "bo", "w_ln", "b_ln"]);
    }

    #[test]
    fn embeddings_dominated_by_token_table() {
        let cfg = ModelConfig::opt_175b();
        let specs = WeightSpec::input_embed_specs(&cfg);
        let token = specs[0].bytes(DType::F16);
        let pos = specs[1].bytes(DType::F16);
        assert!(token.as_f64() / pos.as_f64() > 20.0);
    }

    #[test]
    fn llama_specs_have_no_biases_and_three_ffn_matrices() {
        let cfg = ModelConfig::llama_2_70b();
        let mha = WeightSpec::mha_specs(&cfg);
        assert!(mha.iter().all(|s| s.kind() != WeightKind::Bias));
        // GQA: K/V projections are 8x narrower than Q.
        let wq = mha.iter().find(|s| s.name() == "w_q").unwrap();
        let wk = mha.iter().find(|s| s.name() == "w_k").unwrap();
        assert_eq!(wq.elems(), 8 * wk.elems());
        let ffn = WeightSpec::ffn_specs(&cfg);
        let linears = ffn
            .iter()
            .filter(|s| s.kind() == WeightKind::Linear)
            .count();
        assert_eq!(linears, 3, "SwiGLU gate+up+down");
    }

    #[test]
    fn dtype_byte_sizes() {
        assert_eq!(DType::F16.bytes_for(100), 200);
        assert_eq!(DType::F32.bytes_for(100), 400);
        assert!(DType::Int4Grouped.bytes_for(1024) < 600);
    }
}
