//! Model hyperparameters and presets.
//!
//! The OPT family (the paper's models) plus LLaMA-family presets used
//! by the generalization study: grouped-query attention (GQA) shrinks
//! the KV cache — directly moving the All-CPU batch ceiling — and the
//! gated (SwiGLU) FFN changes the tensor list the placement
//! algorithms walk.

use simcore::units::ByteSize;

/// Hyperparameters of a decoder-only transformer.
///
/// # Examples
///
/// ```
/// use llm::ModelConfig;
///
/// let m = ModelConfig::opt_30b();
/// assert_eq!(m.hidden_size(), 7168);
/// assert_eq!(m.num_blocks(), 48);
/// let l = ModelConfig::llama_2_70b();
/// assert_eq!(l.num_kv_heads(), 8); // GQA
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    name: String,
    hidden_size: usize,
    num_heads: usize,
    num_kv_heads: usize,
    num_blocks: usize,
    ffn_intermediate: usize,
    gated_ffn: bool,
    biases: bool,
    vocab_size: usize,
    max_seq_len: usize,
}

impl ModelConfig {
    /// An OPT-style configuration: multi-head attention (no GQA),
    /// 2-matrix MLP with biases, FFN width `ffn_mult * hidden`.
    ///
    /// # Panics
    ///
    /// Panics if the hidden size is not divisible by the head count
    /// or any dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        hidden_size: usize,
        num_heads: usize,
        num_blocks: usize,
        ffn_mult: usize,
        vocab_size: usize,
        max_seq_len: usize,
    ) -> Self {
        Self::custom(
            name,
            hidden_size,
            num_heads,
            num_heads,
            num_blocks,
            ffn_mult * hidden_size,
            false,
            true,
            vocab_size,
            max_seq_len,
        )
    }

    /// A fully general configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions, a hidden size not divisible by the
    /// head count, or a head count not divisible by the KV-head count
    /// (GQA groups must be uniform).
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        hidden_size: usize,
        num_heads: usize,
        num_kv_heads: usize,
        num_blocks: usize,
        ffn_intermediate: usize,
        gated_ffn: bool,
        biases: bool,
        vocab_size: usize,
        max_seq_len: usize,
    ) -> Self {
        assert!(hidden_size > 0 && num_heads > 0 && num_blocks > 0);
        assert!(num_kv_heads > 0 && ffn_intermediate > 0);
        assert!(vocab_size > 0 && max_seq_len > 0);
        assert_eq!(
            hidden_size % num_heads,
            0,
            "hidden size must divide evenly into heads"
        );
        assert_eq!(
            num_heads % num_kv_heads,
            0,
            "heads must divide evenly into KV heads"
        );
        ModelConfig {
            name: name.into(),
            hidden_size,
            num_heads,
            num_kv_heads,
            num_blocks,
            ffn_intermediate,
            gated_ffn,
            biases,
            vocab_size,
            max_seq_len,
        }
    }

    /// OPT-125M (small smoke-test model).
    pub fn opt_125m() -> Self {
        Self::new("OPT-125M", 768, 12, 12, 4, 50272, 2048)
    }

    /// OPT-1.3B.
    pub fn opt_1_3b() -> Self {
        Self::new("OPT-1.3B", 2048, 32, 24, 4, 50272, 2048)
    }

    /// OPT-6.7B.
    pub fn opt_6_7b() -> Self {
        Self::new("OPT-6.7B", 4096, 32, 32, 4, 50272, 2048)
    }

    /// OPT-13B.
    pub fn opt_13b() -> Self {
        Self::new("OPT-13B", 5120, 40, 40, 4, 50272, 2048)
    }

    /// OPT-30B: 48 decoder blocks, hidden size 7168 (paper §III-B,
    /// §IV-B).
    pub fn opt_30b() -> Self {
        Self::new("OPT-30B", 7168, 56, 48, 4, 50272, 2048)
    }

    /// OPT-66B.
    pub fn opt_66b() -> Self {
        Self::new("OPT-66B", 9216, 72, 64, 4, 50272, 2048)
    }

    /// OPT-175B: 96 decoder blocks, hidden size 12288 (paper §III-B,
    /// §IV-B).
    pub fn opt_175b() -> Self {
        Self::new("OPT-175B", 12288, 96, 96, 4, 50272, 2048)
    }

    /// LLaMA-2 7B: gated FFN, full multi-head attention, no biases.
    pub fn llama_2_7b() -> Self {
        Self::custom(
            "LLaMA-2-7B",
            4096,
            32,
            32,
            32,
            11008,
            true,
            false,
            32000,
            4096,
        )
    }

    /// LLaMA-2 70B: gated FFN with GQA (8 KV heads).
    pub fn llama_2_70b() -> Self {
        Self::custom(
            "LLaMA-2-70B",
            8192,
            64,
            8,
            80,
            28672,
            true,
            false,
            32000,
            4096,
        )
    }

    /// LLaMA-3 8B: gated FFN with GQA and a large vocabulary.
    pub fn llama_3_8b() -> Self {
        Self::custom(
            "LLaMA-3-8B",
            4096,
            32,
            8,
            32,
            14336,
            true,
            false,
            128256,
            8192,
        )
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Embedding/hidden dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Attention (query) head count.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// KV head count (`== num_heads` without GQA).
    pub fn num_kv_heads(&self) -> usize {
        self.num_kv_heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Width of the K/V projections (`kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim()
    }

    /// Decoder block count.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// FFN inner width.
    pub fn ffn_intermediate(&self) -> usize {
        self.ffn_intermediate
    }

    /// FFN expansion factor rounded to an integer (4 for OPT).
    pub fn ffn_mult(&self) -> usize {
        (self.ffn_intermediate as f64 / self.hidden_size as f64).round() as usize
    }

    /// Whether the FFN is gated (SwiGLU: three matrices).
    pub fn gated_ffn(&self) -> bool {
        self.gated_ffn
    }

    /// Whether linear layers carry bias vectors.
    pub fn has_biases(&self) -> bool {
        self.biases
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Maximum (trained) context length.
    pub fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    /// FlexGen's layer count: one input-embedding layer, MHA + FFN
    /// per block, one output-embedding layer (98 for OPT-30B, 194 for
    /// OPT-175B — paper §III-B).
    pub fn num_layers(&self) -> usize {
        2 * self.num_blocks + 2
    }

    /// Total parameter count (decoder blocks + embeddings + final
    /// norm).
    pub fn total_params(&self) -> u64 {
        let h = self.hidden_size as u64;
        let kv = self.kv_dim() as u64;
        let inter = self.ffn_intermediate as u64;
        let mha = h * h * 2 + h * kv * 2 + if self.biases { 2 * h + 2 * kv } else { 0 };
        let ffn_matrices = if self.gated_ffn { 3 } else { 2 };
        let ffn = ffn_matrices * inter * h + if self.biases { inter + h } else { 0 };
        let norms = if self.biases { 4 * h } else { 2 * h };
        let per_block = mha + ffn + norms;
        let blocks = per_block * self.num_blocks as u64;
        let embed = (self.vocab_size as u64 + self.max_seq_len as u64 + 2) * h;
        let final_norm = if self.biases { 2 * h } else { h };
        blocks + embed + final_norm
    }

    /// Total weight bytes at FP16.
    pub fn weight_bytes_f16(&self) -> ByteSize {
        ByteSize::from_bytes(self.total_params() * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_presets_match_paper() {
        let m30 = ModelConfig::opt_30b();
        assert_eq!(m30.num_layers(), 98);
        assert_eq!(m30.head_dim(), 128);
        assert_eq!(m30.kv_dim(), m30.hidden_size()); // no GQA
        let m175 = ModelConfig::opt_175b();
        assert_eq!(m175.num_layers(), 194);
        assert_eq!(m175.head_dim(), 128);
        assert_eq!(m175.ffn_mult(), 4);
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // Within 10% of the nominal model sizes.
        let close = |m: ModelConfig, nominal: f64| {
            let p = m.total_params() as f64;
            assert!(
                (p - nominal).abs() / nominal < 0.10,
                "{}: {p} vs {nominal}",
                m.name()
            );
        };
        close(ModelConfig::opt_175b(), 175e9);
        close(ModelConfig::opt_30b(), 30e9);
        close(ModelConfig::opt_13b(), 13e9);
        close(ModelConfig::llama_2_7b(), 6.7e9);
        close(ModelConfig::llama_2_70b(), 69e9);
        close(ModelConfig::llama_3_8b(), 8.0e9);
    }

    #[test]
    fn opt175b_weight_footprint_exceeds_dram() {
        // The premise of the paper: OPT-175B FP16 weights (~350 GB by
        // exact math; 324.48 GB by the paper's accounting) outgrow
        // 256 GB of DRAM but fit in 1 TB of Optane.
        let bytes = ModelConfig::opt_175b().weight_bytes_f16();
        assert!(bytes > ByteSize::from_gib(256.0));
        assert!(bytes < ByteSize::from_gib(1024.0));
    }

    #[test]
    fn opt30b_fits_dram_not_gpu() {
        let bytes = ModelConfig::opt_30b().weight_bytes_f16();
        assert!(bytes > ByteSize::from_gb(40.0), "exceeds A100 HBM");
        assert!(bytes < ByteSize::from_gib(256.0), "fits host DRAM");
    }

    #[test]
    fn gqa_shrinks_kv_width() {
        let llama = ModelConfig::llama_2_70b();
        assert_eq!(llama.kv_dim(), llama.hidden_size() / 8);
        assert!(llama.gated_ffn());
        assert!(!llama.has_biases());
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_heads_rejected() {
        let _ = ModelConfig::new("bad", 100, 7, 1, 4, 10, 10);
    }

    #[test]
    #[should_panic(expected = "KV heads")]
    fn indivisible_kv_groups_rejected() {
        let _ = ModelConfig::custom("bad", 768, 12, 5, 2, 3072, false, true, 10, 10);
    }
}
