//! An `nvbandwidth`-style host/GPU copy-bandwidth sweep.
//!
//! NVIDIA's `nvbandwidth` measures memcpy bandwidth between host and
//! device over a range of buffer sizes. The paper uses it for its
//! Fig 3 characterization: host→GPU and GPU→host bandwidth for
//! buffers from 256 MB to 32 GB, for DRAM, Optane-as-NUMA (NVDRAM),
//! and Optane Memory Mode on both NUMA nodes. This module regenerates
//! those curves from the path model.

use crate::path::{Direction, HostEndpoint, PathModel, TransferRequest};
use hetmem::device::MemoryDevice;
use hetmem::dram::DramDevice;
use hetmem::memmode::MemoryModeDevice;
use hetmem::numa::NodeId;
use hetmem::optane::OptaneDevice;
use simcore::units::ByteSize;

/// The memory kinds swept in Fig 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepMemory {
    /// Plain DDR4 DRAM.
    Dram,
    /// Optane as a flat NUMA memory tier.
    NvDram,
    /// Optane Memory Mode.
    MemoryMode,
}

impl SweepMemory {
    /// All kinds, in the paper's legend order.
    pub const ALL: [SweepMemory; 3] = [
        SweepMemory::Dram,
        SweepMemory::NvDram,
        SweepMemory::MemoryMode,
    ];

    /// The paper's legend label (without the node suffix).
    pub fn label(self) -> &'static str {
        match self {
            SweepMemory::Dram => "DRAM",
            SweepMemory::NvDram => "NVDRAM",
            SweepMemory::MemoryMode => "MM",
        }
    }

    fn device(self) -> Box<dyn MemoryDevice> {
        match self {
            SweepMemory::Dram => Box::new(DramDevice::ddr4_2933_socket()),
            SweepMemory::NvDram => Box::new(OptaneDevice::dcpmm_200_socket()),
            SweepMemory::MemoryMode => Box::new(MemoryModeDevice::paper_socket()),
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Memory kind.
    pub memory: SweepMemory,
    /// NUMA node of the host buffer.
    pub node: usize,
    /// Direction of the copy.
    pub direction: Direction,
    /// Buffer size.
    pub buffer: ByteSize,
    /// Measured bandwidth in GB/s.
    pub gbps: f64,
}

impl SweepPoint {
    /// Legend label in the paper's style, e.g. `"NVDRAM-0"`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.memory.label(), self.node)
    }
}

/// The buffer sizes of Fig 3: powers of two from 256 MB to 32 GB.
pub fn fig3_buffer_sizes() -> Vec<ByteSize> {
    (0..8)
        .map(|i| ByteSize::from_mb(256.0 * (1u64 << i) as f64))
        .collect()
}

/// Runs the full Fig 3 sweep over `path`.
pub fn sweep(path: &PathModel) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for direction in [Direction::HostToGpu, Direction::GpuToHost] {
        for memory in SweepMemory::ALL {
            let device = memory.device();
            for node in 0..2usize {
                for buffer in fig3_buffer_sizes() {
                    let req = TransferRequest {
                        direction,
                        bytes: buffer,
                        working_set: None,
                    };
                    let ep = HostEndpoint::direct(device.as_ref(), NodeId(node));
                    let gbps = path.effective_bandwidth(&ep, &req).as_gb_per_s();
                    out.push(SweepPoint {
                        memory,
                        node,
                        direction,
                        buffer,
                        gbps,
                    });
                }
            }
        }
    }
    out
}

/// Renders one direction of the sweep as a fixed-width table
/// (buffer sizes as rows, series as columns).
pub fn to_table(points: &[SweepPoint], direction: Direction) -> String {
    let sizes = fig3_buffer_sizes();
    let mut series: Vec<String> = points
        .iter()
        .filter(|p| p.direction == direction)
        .map(SweepPoint::label)
        .collect();
    series.sort();
    series.dedup();
    let mut out = format!("{:>10}", "buffer");
    for s in &series {
        out.push_str(&format!("  {s:>10}"));
    }
    out.push('\n');
    for size in sizes {
        out.push_str(&format!("{:>10}", size.to_string()));
        for s in &series {
            let v = points
                .iter()
                .find(|p| p.direction == direction && p.buffer == size && &p.label() == s)
                .map(|p| p.gbps)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("  {v:>10.2}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<SweepPoint> {
        sweep(&PathModel::paper_system())
    }

    fn find(
        points: &[SweepPoint],
        memory: SweepMemory,
        node: usize,
        direction: Direction,
        buffer_gb: f64,
    ) -> f64 {
        points
            .iter()
            .find(|p| {
                p.memory == memory
                    && p.node == node
                    && p.direction == direction
                    && (p.buffer.as_gb() - buffer_gb).abs() < 1e-6
            })
            .map(|p| p.gbps)
            .unwrap()
    }

    #[test]
    fn sweep_covers_fig3_grid() {
        // 2 directions x 3 memories x 2 nodes x 8 sizes.
        assert_eq!(points().len(), 96);
    }

    #[test]
    fn h2d_nvdram_suffers_and_mm_hides_it() {
        let pts = points();
        let dram = find(&pts, SweepMemory::Dram, 0, Direction::HostToGpu, 4.096);
        let nv = find(&pts, SweepMemory::NvDram, 0, Direction::HostToGpu, 4.096);
        let mm = find(
            &pts,
            SweepMemory::MemoryMode,
            0,
            Direction::HostToGpu,
            4.096,
        );
        // ~20% deficit at 4 GB (paper: "near constant loss of 20%").
        let deficit = 1.0 - nv / dram;
        assert!((deficit - 0.20).abs() < 0.03, "deficit {deficit}");
        // MM overlaps DRAM.
        assert!((mm - dram).abs() / dram < 0.01);
    }

    #[test]
    fn h2d_nvdram_degrades_to_37_percent_at_32gb() {
        let pts = points();
        let dram = find(&pts, SweepMemory::Dram, 0, Direction::HostToGpu, 32.768);
        let nv = find(&pts, SweepMemory::NvDram, 0, Direction::HostToGpu, 32.768);
        let deficit = 1.0 - nv / dram;
        assert!((deficit - 0.37).abs() < 0.04, "deficit {deficit}");
    }

    #[test]
    fn d2h_nvdram_88_percent_below_dram() {
        let pts = points();
        let dram = find(&pts, SweepMemory::Dram, 1, Direction::GpuToHost, 1.024);
        let nv = find(&pts, SweepMemory::NvDram, 1, Direction::GpuToHost, 1.024);
        let deficit = 1.0 - nv / dram;
        assert!((deficit - 0.88).abs() < 0.03, "deficit {deficit}");
    }

    #[test]
    fn d2h_node_asymmetries_match_fig3b() {
        let pts = points();
        // NVDRAM: node 1 beats node 0.
        let nv0 = find(&pts, SweepMemory::NvDram, 0, Direction::GpuToHost, 1.024);
        let nv1 = find(&pts, SweepMemory::NvDram, 1, Direction::GpuToHost, 1.024);
        assert!(nv1 > nv0);
        // MM-1 overlaps DRAM; MM-0 sits below.
        let dram1 = find(&pts, SweepMemory::Dram, 1, Direction::GpuToHost, 1.024);
        let mm1 = find(
            &pts,
            SweepMemory::MemoryMode,
            1,
            Direction::GpuToHost,
            1.024,
        );
        let mm0 = find(
            &pts,
            SweepMemory::MemoryMode,
            0,
            Direction::GpuToHost,
            1.024,
        );
        assert!((mm1 - dram1).abs() / dram1 < 0.01);
        assert!(mm0 < mm1);
    }

    #[test]
    fn table_renders_both_directions() {
        let pts = points();
        let t = to_table(&pts, Direction::HostToGpu);
        assert!(t.contains("NVDRAM-0"));
        assert!(t.lines().count() == 9);
        let t2 = to_table(&pts, Direction::GpuToHost);
        assert!(t2.contains("MM-1"));
    }
}
