//! Composed host↔GPU data paths.
//!
//! A transfer's effective bandwidth is the bottleneck of the stages it
//! crosses: the source/destination memory device, an optional DRAM
//! bounce buffer (storage-interfaced tiers), the PCIe link, and two
//! NUMA/mesh effects the paper measures in Fig 3:
//!
//! * **Remote reads** (device on the non-GPU socket) cross UPI: mild
//!   derate plus the UPI bandwidth cap. This is why NVDRAM-1 sits a
//!   hair below NVDRAM-0 in Fig 3a.
//! * **Local PCM writes** contend with inbound PCIe traffic on the
//!   GPU socket's mesh: GPU→Optane writes to node 0 are *slower* than
//!   to remote node 1 (Fig 3b), the opposite of textbook NUMA
//!   locality. The model applies a mesh-contention derate to writes
//!   into PCM-class memory on the GPU socket.

use crate::pcie::{LinkDirection, PcieLink};
use hetmem::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology, Staging};
use hetmem::numa::NodeId;
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Derate applied to reads that cross the socket interconnect on the
/// way to the GPU (Fig 3a: NVDRAM node-1 slightly below node-0).
pub const REMOTE_READ_FACTOR: f64 = 0.97;
/// Usable UPI bandwidth cap for GPU-bound traffic.
pub const UPI_CAP: Bandwidth = Bandwidth::from_gb_per_s_const(50.0);
/// Derate for writes landing in PCM-class memory on the GPU's own
/// socket, which contend with inbound PCIe traffic on the mesh
/// (Fig 3b: NVDRAM-0 and MM-0 below NVDRAM-1/MM-1).
pub const MESH_PCM_WRITE_CONTENTION: f64 = 0.80;
/// Pipelining efficiency of a chunked bounce-buffer relay.
pub const BOUNCE_PIPELINE_EFFICIENCY: f64 = 0.95;
/// Chunk size used for bounce-buffer staging.
pub const BOUNCE_CHUNK: ByteSize = ByteSize::from_mib_const(64);

/// Direction of a host/GPU transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host memory → GPU HBM (weight loads).
    HostToGpu,
    /// GPU HBM → host memory (KV spills, activations).
    GpuToHost,
}

impl Direction {
    fn link(self) -> LinkDirection {
        match self {
            Direction::HostToGpu => LinkDirection::HostToDevice,
            Direction::GpuToHost => LinkDirection::DeviceToHost,
        }
    }

    /// The access kind this direction induces on the host device.
    pub fn host_access(self) -> AccessKind {
        match self {
            Direction::HostToGpu => AccessKind::SeqRead,
            Direction::GpuToHost => AccessKind::SeqWrite,
        }
    }
}

/// The host-side endpoint of a transfer.
#[derive(Debug, Clone, Copy)]
pub struct HostEndpoint<'a> {
    /// The device holding (or receiving) the data.
    pub device: &'a dyn MemoryDevice,
    /// NUMA node the data lives on.
    pub node: NodeId,
    /// DRAM device used for bounce staging when the endpoint's
    /// staging mode requires it. `None` uses a default DRAM model.
    pub bounce_dram: Option<&'a dyn MemoryDevice>,
}

impl<'a> HostEndpoint<'a> {
    /// An endpoint that DMAs directly (no bounce staging), regardless
    /// of where the device would normally stage.
    pub fn direct(device: &'a dyn MemoryDevice, node: NodeId) -> Self {
        HostEndpoint {
            device,
            node,
            bounce_dram: None,
        }
    }

    /// An endpoint staged through the given DRAM device.
    pub fn staged(device: &'a dyn MemoryDevice, node: NodeId, dram: &'a dyn MemoryDevice) -> Self {
        HostEndpoint {
            device,
            node,
            bounce_dram: Some(dram),
        }
    }
}

/// One transfer to be costed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRequest {
    /// Direction over PCIe.
    pub direction: Direction,
    /// Payload size.
    pub bytes: ByteSize,
    /// Long-run footprint the payload is drawn from (drives Optane
    /// AIT thrash and Memory Mode hit rates); defaults to `bytes`.
    pub working_set: Option<ByteSize>,
}

impl TransferRequest {
    /// A host→GPU transfer of `bytes`.
    pub fn host_to_gpu(bytes: ByteSize) -> Self {
        TransferRequest {
            direction: Direction::HostToGpu,
            bytes,
            working_set: None,
        }
    }

    /// A GPU→host transfer of `bytes`.
    pub fn gpu_to_host(bytes: ByteSize) -> Self {
        TransferRequest {
            direction: Direction::GpuToHost,
            bytes,
            working_set: None,
        }
    }

    /// Sets the long-run footprint.
    pub fn with_working_set(mut self, ws: ByteSize) -> Self {
        self.working_set = Some(ws);
        self
    }
}

/// The platform-level path model: PCIe link + GPU attachment point.
///
/// # Examples
///
/// GPU→host writes into Optane collapse versus DRAM (paper Fig 3b):
///
/// ```
/// use xfer::path::{HostEndpoint, PathModel, TransferRequest};
/// use hetmem::{dram::DramDevice, optane::OptaneDevice, NodeId};
/// use simcore::units::ByteSize;
///
/// let path = PathModel::paper_system();
/// let dram = DramDevice::ddr4_2933_socket();
/// let optane = OptaneDevice::dcpmm_200_socket();
/// let req = TransferRequest::gpu_to_host(ByteSize::from_gb(1.0));
/// let to_dram = path.effective_bandwidth(&HostEndpoint::direct(&dram, NodeId(0)), &req);
/// let to_opt = path.effective_bandwidth(&HostEndpoint::direct(&optane, NodeId(0)), &req);
/// assert!(to_opt.as_gb_per_s() < to_dram.as_gb_per_s() * 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct PathModel {
    pcie: PcieLink,
    gpu_node: NodeId,
    default_bounce_dram: hetmem::dram::DramDevice,
}

impl PathModel {
    /// The paper's platform: PCIe Gen 4 x16, GPU on node 0.
    pub fn paper_system() -> Self {
        PathModel {
            pcie: PcieLink::gen4_x16(),
            gpu_node: NodeId(0),
            default_bounce_dram: hetmem::dram::DramDevice::ddr4_2933_socket(),
        }
    }

    /// A custom link/attachment.
    pub fn new(pcie: PcieLink, gpu_node: NodeId) -> Self {
        PathModel {
            pcie,
            gpu_node,
            default_bounce_dram: hetmem::dram::DramDevice::ddr4_2933_socket(),
        }
    }

    /// The PCIe link.
    pub fn pcie(&self) -> PcieLink {
        self.pcie
    }

    /// The node hosting the GPU's root ports.
    pub fn gpu_node(&self) -> NodeId {
        self.gpu_node
    }

    /// The device-side stage bandwidth (before PCIe), including NUMA
    /// and mesh effects, blended across the device's service
    /// components and capped per-component by the PCIe rate.
    fn device_stage(&self, ep: &HostEndpoint<'_>, req: &TransferRequest) -> Bandwidth {
        let remote = ep.node != self.gpu_node;
        let profile = AccessProfile {
            kind: req.direction.host_access(),
            buffer: req.bytes,
            concurrency: 1,
            // DMA traffic does not pay the CPU-initiator remote
            // penalty baked into device models; NUMA effects are
            // applied here at the path level instead.
            remote: false,
            working_set: req.working_set,
        };
        let pcie_bw = self.pcie.effective(req.direction.link(), req.bytes);
        // Source-feed derate: reads crossing UPI lose a little steam
        // before they reach the PCIe stage (invisible when PCIe is
        // already the bottleneck -- DRAM-0/DRAM-1 overlap in Fig 3a).
        let feed_factor = if remote && req.direction == Direction::HostToGpu {
            REMOTE_READ_FACTOR
        } else {
            1.0
        };
        // Mesh contention throttles the whole inbound path for writes
        // landing in PCM-class memory on the GPU socket, so it applies
        // after the PCIe cap (Fig 3b: MM-0 sits below MM-1 even though
        // both are PCIe-capped on hits).
        let mesh_factor = if !remote
            && req.direction == Direction::GpuToHost
            && matches!(
                ep.device.technology(),
                MemoryTechnology::Pcm | MemoryTechnology::PcmCached
            ) {
            MESH_PCM_WRITE_CONTENTION
        } else {
            1.0
        };
        let inv: f64 = ep
            .device
            .service_components(&profile)
            .iter()
            .map(|(frac, bw)| {
                let mut capped = bw.scale(feed_factor).min(pcie_bw);
                if remote {
                    capped = capped.min(UPI_CAP);
                }
                frac / capped.scale(mesh_factor).as_bytes_per_s()
            })
            .sum();
        Bandwidth::from_bytes_per_s(1.0 / inv)
    }

    /// Effective end-to-end bandwidth for `req` at `ep`.
    pub fn effective_bandwidth(&self, ep: &HostEndpoint<'_>, req: &TransferRequest) -> Bandwidth {
        let device_bw = self.device_stage(ep, req);
        match ep.device.staging() {
            Staging::Direct => device_bw,
            Staging::BounceBuffer => {
                // Chunked relay through DRAM: media<->DRAM stage and
                // DRAM<->GPU stage run pipelined; the slower stage
                // dominates, with a pipelining efficiency factor.
                let dram: &dyn MemoryDevice = ep
                    .bounce_dram
                    .unwrap_or(&self.default_bounce_dram as &dyn MemoryDevice);
                let pcie_bw = self.pcie.effective(req.direction.link(), req.bytes);
                let (dram_kind_a, dram_kind_b) = match req.direction {
                    // media -> DRAM (write), DRAM -> GPU (read)
                    Direction::HostToGpu => (AccessKind::SeqWrite, AccessKind::SeqRead),
                    // GPU -> DRAM (write), DRAM -> media (read)
                    Direction::GpuToHost => (AccessKind::SeqWrite, AccessKind::SeqRead),
                };
                let chunk_profile = |kind| AccessProfile {
                    kind,
                    buffer: BOUNCE_CHUNK.min(req.bytes),
                    concurrency: 1,
                    remote: false,
                    working_set: req.working_set,
                };
                let dram_in = dram.bandwidth(&chunk_profile(dram_kind_a));
                let dram_out = dram.bandwidth(&chunk_profile(dram_kind_b));
                let media_stage = device_bw.min(dram_in);
                let link_stage = pcie_bw.min(dram_out);
                media_stage
                    .min(link_stage)
                    .scale(BOUNCE_PIPELINE_EFFICIENCY)
            }
        }
    }

    /// Wall-clock time for `req` at `ep`: DMA setup + device access
    /// latency + payload streaming (+ one chunk fill when bounced).
    pub fn transfer_time(&self, ep: &HostEndpoint<'_>, req: &TransferRequest) -> SimDuration {
        let bw = self.effective_bandwidth(ep, req);
        let mut t = self.pcie.setup_latency()
            + ep.device
                .idle_latency(req.direction.host_access(), ep.node != self.gpu_node)
            + bw.time_for(req.bytes);
        if ep.device.staging() == Staging::BounceBuffer {
            // The relay cannot start forwarding until the first chunk
            // lands in DRAM.
            t += self
                .device_stage(ep, req)
                .time_for(BOUNCE_CHUNK.min(req.bytes));
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem::dram::DramDevice;
    use hetmem::optane::OptaneDevice;
    use hetmem::storage::StorageDevice;

    fn gb(x: f64) -> ByteSize {
        ByteSize::from_gb(x)
    }

    fn path() -> PathModel {
        PathModel::paper_system()
    }

    #[test]
    fn dram_h2d_hits_pcie_plateau() {
        let dram = DramDevice::ddr4_2933_socket();
        let bw = path().effective_bandwidth(
            &HostEndpoint::direct(&dram, NodeId(0)),
            &TransferRequest::host_to_gpu(gb(4.0)),
        );
        assert!((bw.as_gb_per_s() - 24.9).abs() < 0.2, "got {bw}");
    }

    #[test]
    fn nvdram_h2d_matches_fig3a() {
        let optane = OptaneDevice::dcpmm_200_socket();
        let p = path();
        let at4 = p.effective_bandwidth(
            &HostEndpoint::direct(&optane, NodeId(0)),
            &TransferRequest::host_to_gpu(gb(4.0)),
        );
        assert!((at4.as_gb_per_s() - 19.91).abs() < 0.25, "got {at4}");
        let at32 = p.effective_bandwidth(
            &HostEndpoint::direct(&optane, NodeId(0)),
            &TransferRequest::host_to_gpu(gb(32.0)),
        );
        assert!((at32.as_gb_per_s() - 15.52).abs() < 0.25, "got {at32}");
    }

    #[test]
    fn nvdram_d2h_node_asymmetry_matches_fig3b() {
        // Writes to the GPU-local node are SLOWER than to the remote
        // node -- the paper's counterintuitive mesh-contention result.
        let optane = OptaneDevice::dcpmm_200_socket();
        let p = path();
        let req = TransferRequest::gpu_to_host(gb(1.0));
        let node0 = p.effective_bandwidth(&HostEndpoint::direct(&optane, NodeId(0)), &req);
        let node1 = p.effective_bandwidth(&HostEndpoint::direct(&optane, NodeId(1)), &req);
        assert!(node1 > node0, "node1 {node1} should exceed node0 {node0}");
        assert!((node1.as_gb_per_s() - 3.26).abs() < 0.1, "peak {node1}");
    }

    #[test]
    fn memmode_tracks_dram_in_cache_and_degrades_thrashing() {
        // System-level Memory Mode: 256 GB DRAM cache (both sockets).
        let cfg = hetmem::HostMemoryConfig::memory_mode();
        let mm = cfg.cpu_device();
        let dram = DramDevice::ddr4_2933_socket();
        let p = path();
        let small = TransferRequest::host_to_gpu(gb(4.0));
        let mm_bw = p.effective_bandwidth(&HostEndpoint::direct(mm.as_ref(), NodeId(0)), &small);
        let dram_bw = p.effective_bandwidth(&HostEndpoint::direct(&dram, NodeId(0)), &small);
        assert!((mm_bw.as_gb_per_s() - dram_bw.as_gb_per_s()).abs() < 0.1);
        // With a 300 GB cyclic working set the DRAM cache thrashes.
        let thrash = TransferRequest::host_to_gpu(gb(0.3)).with_working_set(gb(300.0));
        let mm_thrash =
            p.effective_bandwidth(&HostEndpoint::direct(mm.as_ref(), NodeId(0)), &thrash);
        assert!(mm_thrash < dram_bw.scale(0.9));
        // ...but still beats flat Optane.
        let optane = OptaneDevice::dcpmm_200_socket();
        let opt_bw = p.effective_bandwidth(&HostEndpoint::direct(&optane, NodeId(0)), &thrash);
        assert!(mm_thrash > opt_bw);
    }

    #[test]
    fn storage_tiers_are_bounce_limited() {
        let ssd = StorageDevice::optane_block();
        let dax = StorageDevice::optane_fsdax();
        let p = path();
        let req = TransferRequest::host_to_gpu(gb(1.0));
        let ssd_bw = p.effective_bandwidth(&HostEndpoint::direct(&ssd, NodeId(0)), &req);
        let dax_bw = p.effective_bandwidth(&HostEndpoint::direct(&dax, NodeId(0)), &req);
        // FSDAX ~1.5x SSD (paper: ~33% latency reduction).
        let ratio = dax_bw.as_gb_per_s() / ssd_bw.as_gb_per_s();
        assert!((ratio - 1.5).abs() < 0.05, "ratio {ratio}");
        // Both far below NVDRAM.
        assert!(dax_bw.as_gb_per_s() < 5.0);
    }

    #[test]
    fn transfer_time_includes_fixed_costs() {
        let dram = DramDevice::ddr4_2933_socket();
        let p = path();
        let t_small = p.transfer_time(
            &HostEndpoint::direct(&dram, NodeId(0)),
            &TransferRequest::host_to_gpu(ByteSize::from_bytes(1)),
        );
        assert!(t_small >= p.pcie().setup_latency());
        let t_big = p.transfer_time(
            &HostEndpoint::direct(&dram, NodeId(0)),
            &TransferRequest::host_to_gpu(gb(1.0)),
        );
        assert!(t_big > t_small);
    }

    #[test]
    fn bounce_adds_fill_latency() {
        let dax = StorageDevice::optane_fsdax();
        let dram = DramDevice::ddr4_2933_socket();
        let p = path();
        let req = TransferRequest::host_to_gpu(gb(1.0));
        let t_dax = p.transfer_time(&HostEndpoint::staged(&dax, NodeId(0), &dram), &req);
        let bw = p.effective_bandwidth(&HostEndpoint::staged(&dax, NodeId(0), &dram), &req);
        assert!(t_dax > bw.time_for(gb(1.0)));
    }

    #[test]
    fn remote_read_slightly_slower() {
        let optane = OptaneDevice::dcpmm_200_socket();
        let p = path();
        let req = TransferRequest::host_to_gpu(gb(4.0));
        let n0 = p.effective_bandwidth(&HostEndpoint::direct(&optane, NodeId(0)), &req);
        let n1 = p.effective_bandwidth(&HostEndpoint::direct(&optane, NodeId(1)), &req);
        assert!(n1 < n0);
        assert!(n1.as_gb_per_s() / n0.as_gb_per_s() > 0.9);
    }
}
