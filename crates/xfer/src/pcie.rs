//! PCIe link model.
//!
//! The evaluation platform pairs the A100 with 16 PCIe Gen 4 links for
//! a theoretical 32.0 GB/s (Table I). Real DMA copies achieve less:
//! the paper's Fig 3 DRAM curves plateau near 24.9 GB/s host-to-GPU
//! and 26.1 GB/s GPU-to-host, and small transfers pay a setup/ramp
//! cost before reaching the plateau.

use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Plateau DMA efficiency, host-to-GPU (24.9 / 32.0, Fig 3a).
pub const H2D_EFFICIENCY: f64 = 0.778;
/// Plateau DMA efficiency, GPU-to-host (26.1 / 32.0, Fig 3b).
pub const D2H_EFFICIENCY: f64 = 0.816;
/// Message-size ramp constant: effective = plateau * s/(s + RAMP).
pub const RAMP: ByteSize = ByteSize::from_bytes(8_000_000);
/// Fixed DMA setup cost per transfer (driver + doorbell + engine).
pub const DMA_SETUP: SimDuration = SimDuration::from_micros_const(12.0);

/// PCI Express generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 8 GT/s, ~0.985 GB/s per lane.
    Gen3,
    /// 16 GT/s, ~1.969 GB/s per lane.
    Gen4,
    /// 32 GT/s, ~3.938 GB/s per lane (64 GB/s x16, §II-D).
    Gen5,
    /// 64 GT/s (PAM4), ~7.563 GB/s per lane (121 GB/s x16, §II-D).
    Gen6,
}

impl PcieGen {
    /// Theoretical per-lane payload bandwidth in GB/s.
    pub fn per_lane_gbps(self) -> f64 {
        match self {
            PcieGen::Gen3 => 0.985,
            PcieGen::Gen4 => 2.0,
            PcieGen::Gen5 => 4.0,
            PcieGen::Gen6 => 7.563,
        }
    }
}

/// Transfer direction over the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDirection {
    /// Host memory to GPU HBM.
    HostToDevice,
    /// GPU HBM to host memory.
    DeviceToHost,
}

/// A PCIe link of a given generation and width.
///
/// # Examples
///
/// ```
/// use xfer::pcie::{PcieGen, PcieLink, LinkDirection};
/// use simcore::units::ByteSize;
///
/// let link = PcieLink::gen4_x16();
/// assert_eq!(link.theoretical().as_gb_per_s(), 32.0);
/// let eff = link.effective(LinkDirection::HostToDevice, ByteSize::from_gb(4.0));
/// assert!(eff.as_gb_per_s() > 24.0 && eff.as_gb_per_s() < 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLink {
    gen: PcieGen,
    lanes: u8,
}

impl PcieLink {
    /// The platform's link: PCIe Gen 4 x16 (Table I).
    pub fn gen4_x16() -> Self {
        PcieLink {
            gen: PcieGen::Gen4,
            lanes: 16,
        }
    }

    /// An arbitrary link.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(gen: PcieGen, lanes: u8) -> Self {
        assert!(lanes > 0, "lanes must be positive");
        PcieLink { gen, lanes }
    }

    /// The link generation.
    pub fn gen(self) -> PcieGen {
        self.gen
    }

    /// The lane count.
    pub fn lanes(self) -> u8 {
        self.lanes
    }

    /// Theoretical payload bandwidth.
    pub fn theoretical(self) -> Bandwidth {
        Bandwidth::from_gb_per_s(self.gen.per_lane_gbps() * f64::from(self.lanes))
    }

    /// Achievable DMA bandwidth for a transfer of `bytes` in
    /// `direction`, applying the direction efficiency and the
    /// message-size ramp.
    pub fn effective(self, direction: LinkDirection, bytes: ByteSize) -> Bandwidth {
        let eff = match direction {
            LinkDirection::HostToDevice => H2D_EFFICIENCY,
            LinkDirection::DeviceToHost => D2H_EFFICIENCY,
        };
        let s = bytes.as_f64().max(1.0);
        let ramp = s / (s + RAMP.as_f64());
        self.theoretical().scale(eff * ramp)
    }

    /// Fixed setup latency for one DMA transfer.
    pub fn setup_latency(self) -> SimDuration {
        DMA_SETUP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_table() {
        assert_eq!(PcieLink::gen4_x16().theoretical().as_gb_per_s(), 32.0);
        assert!((PcieLink::new(PcieGen::Gen5, 16).theoretical().as_gb_per_s() - 64.0).abs() < 1e-9);
        let gen6 = PcieLink::new(PcieGen::Gen6, 16).theoretical().as_gb_per_s();
        assert!((gen6 - 121.0).abs() < 1.0, "PCIe 6 x16 ~121 GB/s: {gen6}");
    }

    #[test]
    fn plateau_matches_fig3() {
        let link = PcieLink::gen4_x16();
        let h2d = link
            .effective(LinkDirection::HostToDevice, ByteSize::from_gb(32.0))
            .as_gb_per_s();
        let d2h = link
            .effective(LinkDirection::DeviceToHost, ByteSize::from_gb(32.0))
            .as_gb_per_s();
        assert!((h2d - 24.9).abs() < 0.1, "H2D plateau: {h2d}");
        assert!((d2h - 26.1).abs() < 0.1, "D2H plateau: {d2h}");
    }

    #[test]
    fn small_transfers_ramp_up() {
        let link = PcieLink::gen4_x16();
        let tiny = link.effective(LinkDirection::HostToDevice, ByteSize::from_mb(1.0));
        let big = link.effective(LinkDirection::HostToDevice, ByteSize::from_gb(1.0));
        assert!(tiny < big);
        // 256 MB (Fig 3's smallest point) is already within 5% of the plateau.
        let fig3_min = link.effective(LinkDirection::HostToDevice, ByteSize::from_mb(256.0));
        assert!(fig3_min.as_gb_per_s() / big.as_gb_per_s() > 0.95);
    }

    #[test]
    fn d2h_slightly_faster_than_h2d() {
        let link = PcieLink::gen4_x16();
        let b = ByteSize::from_gb(1.0);
        assert!(
            link.effective(LinkDirection::DeviceToHost, b)
                > link.effective(LinkDirection::HostToDevice, b)
        );
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn zero_lanes_rejected() {
        let _ = PcieLink::new(PcieGen::Gen4, 0);
    }

    #[test]
    fn accessors() {
        let link = PcieLink::gen4_x16();
        assert_eq!(link.gen(), PcieGen::Gen4);
        assert_eq!(link.lanes(), 16);
        assert!(link.setup_latency().as_micros() > 0.0);
    }
}
