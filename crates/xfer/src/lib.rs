//! # xfer — host/GPU data-movement models
//!
//! Everything between a host memory device and GPU HBM:
//!
//! * [`pcie`] — the PCIe link model (generation/lane bandwidth table,
//!   direction-specific DMA efficiency, message-size ramp).
//! * [`path`] — composition of a full data path: source device →
//!   (optional DRAM bounce buffer) → PCIe → GPU, including the NUMA
//!   and mesh-contention effects behind the paper's Fig 3 asymmetries.
//! * [`link`] — a water-filling shared-link model for concurrent
//!   transfers with per-flow rate caps (the DES-facing resource).
//! * [`nvbandwidth`] — an `nvbandwidth`-style sweep harness that
//!   regenerates the paper's Fig 3 bandwidth curves.
//!
//! # Examples
//!
//! Host-to-GPU bandwidth from Optane is far below DRAM (paper Fig 3a):
//!
//! ```
//! use xfer::path::{Direction, HostEndpoint, PathModel, TransferRequest};
//! use hetmem::{dram::DramDevice, optane::OptaneDevice, NodeId};
//! use simcore::units::ByteSize;
//!
//! let path = PathModel::paper_system();
//! let dram = DramDevice::ddr4_2933_socket();
//! let optane = OptaneDevice::dcpmm_200_socket();
//! let req = TransferRequest::host_to_gpu(ByteSize::from_gb(4.0));
//! let bw_dram = path.effective_bandwidth(&HostEndpoint::direct(&dram, NodeId(0)), &req);
//! let bw_opt = path.effective_bandwidth(&HostEndpoint::direct(&optane, NodeId(0)), &req);
//! assert!(bw_opt.as_gb_per_s() < bw_dram.as_gb_per_s() * 0.85);
//! # let _ = Direction::HostToGpu;
//! ```

pub mod link;
pub mod nvbandwidth;
pub mod path;
pub mod pcie;

pub use link::CappedLink;
pub use path::{Direction, HostEndpoint, PathModel, TransferRequest};
pub use pcie::{PcieGen, PcieLink};
