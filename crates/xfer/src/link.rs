//! Shared-link scheduling with per-flow rate caps.
//!
//! PCIe serves concurrent DMA transfers (weight loads, KV movement,
//! hidden-state hops) by sharing link bandwidth — but each transfer is
//! also individually capped by its source device (a weight load out of
//! Optane cannot exceed ~20 GB/s no matter how idle the link is).
//!
//! [`CappedLink`] implements *water-filling* processor sharing: link
//! capacity is distributed fairly, and any flow whose fair share
//! exceeds its cap is clamped, with the slack redistributed among the
//! remaining flows. Like [`simcore::FlowScheduler`], the model is
//! analytic — rates are piecewise constant between arrival/departure
//! events, so the executor only needs `next_completion`.

use simcore::time::{SimDuration, SimTime};
use simcore::units::Bandwidth;
use std::collections::BTreeMap;

/// Identifier of an active transfer on one [`CappedLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

#[derive(Debug, Clone)]
struct ActiveFlow {
    remaining: f64,
    cap: f64,
}

/// A bandwidth-shared link whose flows carry individual rate caps.
///
/// # Examples
///
/// A capped flow cannot be sped up by an idle link:
///
/// ```
/// use xfer::link::CappedLink;
/// use simcore::units::Bandwidth;
/// use simcore::SimTime;
///
/// let mut link = CappedLink::new(Bandwidth::from_gb_per_s(25.0));
/// let slow = link.start(
///     SimTime::ZERO,
///     20e9, // 20 GB
///     Bandwidth::from_gb_per_s(20.0), // Optane-capped
/// );
/// let (done, id) = link.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(id, slow);
/// assert!((done.as_secs() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct CappedLink {
    capacity: f64,
    // BTreeMap, not HashMap: iteration order reaches rate and
    // progress arithmetic, and hash order would make it
    // run-dependent.
    flows: BTreeMap<TransferId, ActiveFlow>,
    last_update: SimTime,
    next_id: u64,
}

impl CappedLink {
    /// Creates a link with the given capacity.
    pub fn new(capacity: Bandwidth) -> Self {
        CappedLink {
            capacity: capacity.as_bytes_per_s(),
            flows: BTreeMap::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// Link capacity.
    pub fn capacity(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_s(self.capacity)
    }

    /// Number of in-flight transfers.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Starts a transfer of `bytes` whose rate never exceeds `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative/NaN or `now` precedes the last
    /// update.
    // lint: allow(untyped-unit-fn): fluid-flow model — fractional byte counts are meaningful, so `bytes` stays f64
    pub fn start(&mut self, now: SimTime, bytes: f64, cap: Bandwidth) -> TransferId {
        assert!(bytes >= 0.0 && !bytes.is_nan(), "invalid bytes: {bytes}");
        self.advance_to(now);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            ActiveFlow {
                remaining: bytes,
                cap: cap.as_bytes_per_s(),
            },
        );
        id
    }

    /// Current per-flow rates under water-filling.
    pub fn rates(&self) -> BTreeMap<TransferId, Bandwidth> {
        self.compute_rates()
            .into_iter()
            .map(|(id, r)| (id, Bandwidth::from_bytes_per_s(r.max(f64::MIN_POSITIVE))))
            .collect()
    }

    fn compute_rates(&self) -> BTreeMap<TransferId, f64> {
        let mut rates: BTreeMap<TransferId, f64> = BTreeMap::new();
        if self.flows.is_empty() {
            return rates;
        }
        // Water-filling: repeatedly hand every unassigned flow an
        // equal share; flows whose cap is below the share are clamped
        // and their slack returned to the pool.
        let mut unassigned: Vec<(TransferId, f64)> =
            self.flows.iter().map(|(&id, f)| (id, f.cap)).collect();
        unassigned.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut remaining_capacity = self.capacity;
        let mut i = 0;
        while i < unassigned.len() {
            let n_left = (unassigned.len() - i) as f64;
            let fair = remaining_capacity / n_left;
            let (id, cap) = unassigned[i];
            if cap <= fair {
                rates.insert(id, cap);
                remaining_capacity -= cap;
                i += 1;
            } else {
                // Every remaining flow has cap > fair share: all get
                // the fair share.
                for &(id, _) in &unassigned[i..] {
                    rates.insert(id, fair);
                }
                return rates;
            }
        }
        rates
    }

    /// The next transfer to finish, or `None` when idle.
    pub fn next_completion(&self, now: SimTime) -> Option<(SimTime, TransferId)> {
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_update);
        let elapsed = (now - self.last_update).as_secs();
        let rates = self.compute_rates();
        let mut best: Option<(f64, TransferId)> = None;
        for (&id, flow) in &self.flows {
            let rate = rates[&id];
            let progressed = (rate * elapsed).min(flow.remaining);
            let remaining = flow.remaining - progressed;
            let finish_in = if rate > 0.0 {
                remaining / rate
            } else {
                f64::INFINITY
            };
            best = Some(match best {
                None => (finish_in, id),
                Some(b) if finish_in < b.0 || (finish_in == b.0 && id < b.1) => (finish_in, id),
                Some(b) => b,
            });
        }
        let (finish_in, id) = best.expect("non-empty"); // lint: allow(no-panic): loop above ran over a non-empty map, so `best` is set
        Some((now + SimDuration::from_secs(finish_in.max(0.0)), id))
    }

    /// Runs the link dry from `from`: repeatedly takes the next
    /// completion, removes it, and reports it to `on_complete` in
    /// completion order, returning the instant the last transfer
    /// finished (`from` when the link was already idle). The loop is
    /// the exact `next_completion`/`complete` sequence an event-driven
    /// caller would issue, one call per step — coalescing it here
    /// keeps the f64 water-filling arithmetic identical while sparing
    /// the caller a scheduler round-trip per transfer.
    pub fn drain(
        &mut self,
        from: SimTime,
        mut on_complete: impl FnMut(SimTime, TransferId),
    ) -> SimTime {
        let mut t = from;
        while let Some((at, id)) = self.next_completion(t) {
            t = at;
            self.complete(t, id);
            on_complete(t, id);
        }
        t
    }

    /// Declares `id` complete at `now`, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not active.
    pub fn complete(&mut self, now: SimTime, id: TransferId) {
        self.advance_to(now);
        self.flows.remove(&id).expect("unknown transfer id"); // lint: allow(no-panic): structural invariant — ids are issued by this link itself
    }

    /// Cancels `id` at `now`, returning the bytes it had left to
    /// move. Progress up to `now` counts as transferred; the returned
    /// remainder is what a conservation ledger must account as
    /// dropped rather than delivered.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not active.
    pub fn cancel(&mut self, now: SimTime, id: TransferId) -> f64 {
        self.advance_to(now);
        let flow = self.flows.remove(&id);
        assert!(flow.is_some(), "unknown transfer id");
        flow.map_or(0.0, |f| f.remaining)
    }

    fn advance_to(&mut self, now: SimTime) {
        assert!(now >= self.last_update, "link time went backwards");
        let elapsed = (now - self.last_update).as_secs();
        self.last_update = now;
        if elapsed == 0.0 || self.flows.is_empty() {
            return;
        }
        let rates = self.compute_rates();
        for (id, flow) in self.flows.iter_mut() {
            let progressed = (rates[id] * elapsed).min(flow.remaining);
            flow.remaining -= progressed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn gbps(x: f64) -> Bandwidth {
        Bandwidth::from_gb_per_s(x)
    }

    #[test]
    fn uncapped_flows_share_fairly() {
        let mut link = CappedLink::new(gbps(20.0));
        let a = link.start(t(0.0), 10e9, gbps(100.0));
        let _b = link.start(t(0.0), 10e9, gbps(100.0));
        // Each gets 10 GB/s -> 1 s for 10 GB.
        let (done, first) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(first, a);
        assert!((done.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_leaves_slack_to_others() {
        let mut link = CappedLink::new(gbps(25.0));
        // Optane-fed flow capped at 5 GB/s; DRAM-fed flow can take 20.
        let slow = link.start(t(0.0), 5e9, gbps(5.0));
        let fast = link.start(t(0.0), 20e9, gbps(100.0));
        let rates = link.rates();
        assert!((rates[&slow].as_gb_per_s() - 5.0).abs() < 1e-9);
        assert!((rates[&fast].as_gb_per_s() - 20.0).abs() < 1e-9);
        let (done, id) = link.next_completion(t(0.0)).unwrap();
        // Both finish at t=1.0; the lower id wins ties.
        assert_eq!(id, slow);
        assert!((done.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn departure_speeds_up_survivors() {
        let mut link = CappedLink::new(gbps(20.0));
        let a = link.start(t(0.0), 5e9, gbps(100.0));
        let b = link.start(t(0.0), 20e9, gbps(100.0));
        // Shared 10/10: a finishes at 0.5 s with b holding 15 GB.
        let (ta, fa) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(fa, a);
        assert!((ta.as_secs() - 0.5).abs() < 1e-9);
        link.complete(ta, a);
        // b now runs at 20 GB/s: 15 GB -> 0.75 s more.
        let (tb, fb) = link.next_completion(ta).unwrap();
        assert_eq!(fb, b);
        assert!((tb.as_secs() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn single_capped_flow_ignores_idle_capacity() {
        let mut link = CappedLink::new(gbps(25.0));
        let id = link.start(t(0.0), 10e9, gbps(2.0));
        let (done, got) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(got, id);
        assert!((done.as_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_conserves_capacity() {
        let mut link = CappedLink::new(gbps(30.0));
        let _a = link.start(t(0.0), 1e9, gbps(4.0));
        let _b = link.start(t(0.0), 1e9, gbps(8.0));
        let _c = link.start(t(0.0), 1e9, gbps(100.0));
        let total: f64 = link.rates().values().map(|r| r.as_gb_per_s()).sum();
        // 4 + 8 + 18 = 30: fully used.
        assert!((total - 30.0).abs() < 1e-9);
    }

    #[test]
    fn caps_below_fair_share_redistribute() {
        let mut link = CappedLink::new(gbps(30.0));
        let a = link.start(t(0.0), 1e9, gbps(3.0));
        let b = link.start(t(0.0), 1e9, gbps(100.0));
        let c = link.start(t(0.0), 1e9, gbps(100.0));
        let rates = link.rates();
        assert!((rates[&a].as_gb_per_s() - 3.0).abs() < 1e-9);
        assert!((rates[&b].as_gb_per_s() - 13.5).abs() < 1e-9);
        assert!((rates[&c].as_gb_per_s() - 13.5).abs() < 1e-9);
    }

    #[test]
    fn drain_replays_the_stepwise_completion_sequence() {
        let mk = || {
            let mut link = CappedLink::new(gbps(25.0));
            link.start(t(0.0), 5e9, gbps(5.0));
            link.start(t(0.0), 20e9, gbps(100.0));
            link.start(t(0.0), 1e9, gbps(2.0));
            link
        };
        // Reference: the manual next_completion/complete loop.
        let mut stepwise = mk();
        let mut expected = Vec::new();
        let mut tt = t(0.0);
        while let Some((at, id)) = stepwise.next_completion(tt) {
            tt = at;
            stepwise.complete(tt, id);
            expected.push((at.as_secs().to_bits(), id));
        }
        let mut coalesced = mk();
        let mut got = Vec::new();
        let end = coalesced.drain(t(0.0), |at, id| got.push((at.as_secs().to_bits(), id)));
        assert_eq!(got, expected);
        assert_eq!(end.as_secs().to_bits(), tt.as_secs().to_bits());
        assert_eq!(coalesced.active(), 0);
        // Idle drain is a no-op anchored at `from`.
        assert_eq!(coalesced.drain(end, |_, _| unreachable!()), end);
    }

    #[test]
    fn idle_link_reports_none() {
        let link = CappedLink::new(gbps(1.0));
        assert!(link.next_completion(SimTime::ZERO).is_none());
        assert_eq!(link.active(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown transfer id")]
    fn completing_unknown_panics() {
        let mut link = CappedLink::new(gbps(1.0));
        link.complete(SimTime::ZERO, TransferId(3));
    }

    #[test]
    fn cancel_returns_the_unmoved_remainder() {
        let mut link = CappedLink::new(gbps(20.0));
        let a = link.start(t(0.0), 10e9, gbps(100.0));
        let b = link.start(t(0.0), 10e9, gbps(100.0));
        // Shared 10/10 GB/s: after 0.5 s each flow has moved 5 GB.
        let remaining = link.cancel(t(0.5), a);
        assert!((remaining - 5e9).abs() < 1.0, "remaining {remaining}");
        assert_eq!(link.active(), 1);
        // The survivor speeds up to the full link: 5 GB at 20 GB/s.
        let (done, id) = link.next_completion(t(0.5)).unwrap();
        assert_eq!(id, b);
        assert!((done.as_secs() - 0.75).abs() < 1e-9);
    }
}
