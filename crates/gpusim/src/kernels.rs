//! Kernel cost models in the measured FlexGen regime.
//!
//! LLM-serving kernels rarely run at vendor peaks. FlexGen in
//! particular pays per-layer Python dispatch, non-fused attention,
//! and — decisive for the paper's Section V — an expensive on-GPU
//! group-wise dequantization pass when weights are stored 4-bit.
//! Back-solving the paper's Table IV compute/communication ratios
//! shows compressed-layer compute time is proportional to compressed
//! weight bytes at roughly 25–26 GB/s effective throughput; the
//! constants below encode that regime and the cited observation that
//! compression raises compute time 2.5–13x (Fig 6).

use crate::spec::GpuSpec;
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ComputeRate};

/// Fraction of peak FP16 tensor FLOPs realized by serving GEMMs.
pub const GEMM_EFFICIENCY: f64 = 0.45;
/// Fraction of HBM bandwidth realized by GEMV/attention streaming.
pub const GEMV_HBM_EFFICIENCY: f64 = 0.60;
/// Effective group-wise dequantization throughput over *compressed*
/// bytes. Calibrated to Table IV: baseline batch-1 MHA-compute /
/// FFN-load = 0.36 on NVDRAM with 4-bit weights.
pub const DEQUANT_BW: Bandwidth = Bandwidth::from_gb_per_s_const(25.6);
/// Fraction of HBM bandwidth realized by elementwise kernels
/// (layernorm, residual adds, activation functions).
pub const ELEMENTWISE_HBM_EFFICIENCY: f64 = 0.70;

/// The kernel classes the executor issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense matrix-matrix multiply (prefill, batched decode FFN).
    Gemm,
    /// Matrix-vector multiply (decode with small batch).
    Gemv,
    /// Attention score/value computation over the KV cache.
    Attention,
    /// Group-wise 4-bit → FP16 dequantization.
    Dequant,
    /// Elementwise work (norms, residuals, activations).
    Elementwise,
}

/// A kernel's resource demands.
///
/// # Examples
///
/// ```
/// use gpusim::{GpuSpec, KernelProfile};
///
/// let gpu = GpuSpec::a100_40gb();
/// // Dequantizing 0.302 GB of compressed MHA weights dominates the
/// // compressed decode step (paper §V).
/// let t = gpu.kernel_time(&KernelProfile::dequant(0.302e9));
/// assert!((t.as_millis() - 11.8).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Kernel class (selects the efficiency model).
    pub kind: KernelKind,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved through HBM.
    pub hbm_bytes: f64,
}

impl KernelProfile {
    /// A GEMM computing `flops` over `hbm_bytes` of operands.
    // lint: allow(untyped-unit-fn): roofline operands stay f64 — callers pass fractional per-token byte/FLOP counts, and the cost-table equivalence proof pins these signatures
    pub fn gemm(flops: f64, hbm_bytes: f64) -> Self {
        KernelProfile {
            kind: KernelKind::Gemm,
            flops,
            hbm_bytes,
        }
    }

    /// A GEMV streaming `hbm_bytes` of weights (2 FLOPs per 2-byte
    /// element).
    // lint: allow(untyped-unit-fn): roofline operands stay f64 — callers pass fractional per-token byte/FLOP counts, and the cost-table equivalence proof pins these signatures
    pub fn gemv(hbm_bytes: f64) -> Self {
        KernelProfile {
            kind: KernelKind::Gemv,
            flops: hbm_bytes, // 2 flops / 2 bytes
            hbm_bytes,
        }
    }

    /// An attention pass streaming `kv_bytes` of cache and computing
    /// `flops`.
    // lint: allow(untyped-unit-fn): roofline operands stay f64 — callers pass fractional per-token byte/FLOP counts, and the cost-table equivalence proof pins these signatures
    pub fn attention(flops: f64, kv_bytes: f64) -> Self {
        KernelProfile {
            kind: KernelKind::Attention,
            flops,
            hbm_bytes: kv_bytes,
        }
    }

    /// A dequantization pass over `compressed_bytes`.
    // lint: allow(untyped-unit-fn): roofline operands stay f64 — callers pass fractional per-token byte/FLOP counts, and the cost-table equivalence proof pins these signatures
    pub fn dequant(compressed_bytes: f64) -> Self {
        KernelProfile {
            kind: KernelKind::Dequant,
            flops: 0.0,
            hbm_bytes: compressed_bytes,
        }
    }

    /// An elementwise pass over `hbm_bytes`.
    // lint: allow(untyped-unit-fn): roofline operands stay f64 — callers pass fractional per-token byte/FLOP counts, and the cost-table equivalence proof pins these signatures
    pub fn elementwise(hbm_bytes: f64) -> Self {
        KernelProfile {
            kind: KernelKind::Elementwise,
            flops: hbm_bytes,
            hbm_bytes,
        }
    }

    /// Execution time on `gpu`: launch overhead plus the roofline of
    /// the kind-specific FLOP and bandwidth terms.
    pub fn time_on(&self, gpu: &GpuSpec) -> SimDuration {
        let peak_flops = ComputeRate::from_tflops(gpu.fp16_tflops()).as_flops_per_s();
        let hbm = gpu.hbm_bandwidth().as_bytes_per_s();
        let busy = match self.kind {
            KernelKind::Gemm => {
                let flop_time = self.flops / (peak_flops * GEMM_EFFICIENCY);
                let mem_time = self.hbm_bytes / (hbm * GEMV_HBM_EFFICIENCY);
                flop_time.max(mem_time)
            }
            KernelKind::Gemv | KernelKind::Attention => {
                self.hbm_bytes / (hbm * GEMV_HBM_EFFICIENCY)
            }
            KernelKind::Dequant => self.hbm_bytes / DEQUANT_BW.as_bytes_per_s(),
            KernelKind::Elementwise => self.hbm_bytes / (hbm * ELEMENTWISE_HBM_EFFICIENCY),
        };
        gpu.kernel_launch_overhead() + SimDuration::from_secs(busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::a100_40gb()
    }

    #[test]
    fn gemv_is_bandwidth_bound() {
        // 2.416 GB of FP16 FFN weights (one OPT-175B block) stream in
        // ~2.6 ms at 60% of HBM bandwidth.
        let t = gpu().kernel_time(&KernelProfile::gemv(2.416e9));
        assert!((t.as_millis() - 2.6).abs() < 0.2, "got {t}");
    }

    #[test]
    fn dequant_matches_table_iv_calibration() {
        // Compressed FFN block: 0.604 GB -> ~23.6 ms.
        let t = gpu().kernel_time(&KernelProfile::dequant(0.604e9));
        assert!((t.as_millis() - 23.6).abs() < 0.5, "got {t}");
    }

    #[test]
    fn compression_raises_compute_2_5x_to_13x() {
        // Paper Fig 6: compressed compute is 2.5-13x uncompressed.
        let g = gpu();
        let uncompressed = g.kernel_time(&KernelProfile::gemv(2.416e9));
        let compressed = g.kernel_time(&KernelProfile::dequant(0.604e9))
            + g.kernel_time(&KernelProfile::gemv(2.416e9));
        let ratio = compressed.as_secs() / uncompressed.as_secs();
        assert!(
            (2.5..=13.0).contains(&ratio),
            "compression compute blow-up {ratio}"
        );
    }

    #[test]
    fn gemm_rooflines_between_flops_and_bytes() {
        let g = gpu();
        // Tiny-M GEMM: memory bound.
        let mem_bound = KernelProfile::gemm(1e9, 2.416e9);
        let mb = g.kernel_time(&mem_bound);
        // Large-M GEMM on the same weights: compute bound.
        let flop_bound = KernelProfile::gemm(1e15, 2.416e9);
        let fb = g.kernel_time(&flop_bound);
        assert!(fb > mb);
        let expect = 1e15 / (312e12 * GEMM_EFFICIENCY);
        assert!((fb.as_secs() - expect).abs() / expect < 0.01);
    }

    #[test]
    fn launch_overhead_floors_small_kernels() {
        let g = gpu();
        let t = g.kernel_time(&KernelProfile::elementwise(1.0));
        assert!(t >= g.kernel_launch_overhead());
    }

    #[test]
    fn attention_scales_with_kv_bytes() {
        let g = gpu();
        let small = g.kernel_time(&KernelProfile::attention(1e6, 50e6));
        let large = g.kernel_time(&KernelProfile::attention(1e6, 500e6));
        assert!(large > small);
    }
}
