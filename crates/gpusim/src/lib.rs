//! # gpusim — GPU performance and capacity models
//!
//! The accelerator side of the simulator:
//!
//! * [`spec`] — device specifications ([`GpuSpec::a100_40gb`] is the
//!   paper's card) with peak FLOP rates, HBM bandwidth, and capacity.
//! * [`kernels`] — cost models for the kernels LLM inference runs:
//!   GEMM (prefill), GEMV (decode), attention, group-wise
//!   dequantization, and elementwise work, in the *measured FlexGen
//!   regime* (efficiencies calibrated to the paper's
//!   compute/communication ratios in Table IV and Figs 5–6, not
//!   vendor peaks).
//! * [`memory`] — a GPU memory budget solver that reproduces the
//!   paper's maximum batch sizes (8 for the baseline OPT-175B policy,
//!   44 for All-CPU).
//!
//! # Examples
//!
//! ```
//! use gpusim::{GpuSpec, KernelProfile};
//!
//! let gpu = GpuSpec::a100_40gb();
//! // A decode-phase GEMV streaming 1 GB of weights.
//! let t = gpu.kernel_time(&KernelProfile::gemv(1e9));
//! assert!(t.as_millis() > 0.5 && t.as_millis() < 5.0);
//! ```

pub mod kernels;
pub mod memory;
pub mod spec;

pub use kernels::{KernelKind, KernelProfile};
pub use memory::{MemoryBudget, ResidentCosts};
pub use spec::GpuSpec;
