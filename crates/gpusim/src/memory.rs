//! GPU memory budgeting and the maximum-batch solver.
//!
//! GPU memory holds (paper §V): the GPU-resident share of the model
//! weights, a double-buffer for in-flight weight prefetches (layer
//! *j+1* streams while layer *j* computes), a fixed workspace
//! reserve, and a per-sequence cost (KV cache for the generation
//! context, hidden state, attention workspace). The largest batch
//! whose per-sequence costs fit in the remainder is the serving batch
//! limit — the quantity All-CPU maximizes by evicting all weights
//! (paper §V-C: 8 → 44 for OPT-175B).

use simcore::units::ByteSize;

/// Multiplier over raw KV-cache bytes covering attention workspace,
/// allocator alignment, and fragmentation. Calibrated jointly with
/// [`WORKSPACE_RESERVE`] so the OPT-175B limits land on the paper's
/// 8 (baseline uncompressed) and 44 (All-CPU compressed) with the
/// exact-architecture placement sizes.
pub const KV_OVERHEAD_FACTOR: f64 = 1.24;
/// Fixed workspace reserve (cuBLAS workspaces, streams, fragmentation
/// floor).
pub const WORKSPACE_RESERVE: ByteSize = ByteSize::from_bytes(200_000_000);

/// The resident (batch-independent) and per-sequence costs of a
/// serving configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentCosts {
    /// GPU-resident weight bytes (placement-dependent).
    pub weights: ByteSize,
    /// Prefetch staging: twice the largest host-resident layer group.
    pub staging: ByteSize,
    /// Raw KV-cache bytes per sequence at the serving context length.
    pub kv_per_sequence: ByteSize,
    /// Hidden-state bytes per sequence.
    pub hidden_per_sequence: ByteSize,
}

/// A GPU memory budget.
///
/// # Examples
///
/// All-CPU placement frees weight space for sequences:
///
/// ```
/// use gpusim::{GpuSpec, MemoryBudget, ResidentCosts};
/// use simcore::units::ByteSize;
///
/// let budget = MemoryBudget::for_gpu(&GpuSpec::a100_40gb());
/// let baseline = ResidentCosts {
///     weights: ByteSize::from_gb(26.9),
///     staging: ByteSize::from_gb(4.8),
///     kv_per_sequence: ByteSize::from_mb(703.0),
///     hidden_per_sequence: ByteSize::from_mb(3.7),
/// };
/// let all_cpu = ResidentCosts { weights: ByteSize::ZERO, ..baseline };
/// assert!(budget.max_batch(&all_cpu) > budget.max_batch(&baseline) * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    capacity: ByteSize,
}

impl MemoryBudget {
    /// A budget covering the full HBM capacity of `gpu`.
    pub fn for_gpu(gpu: &crate::spec::GpuSpec) -> Self {
        MemoryBudget {
            capacity: gpu.hbm_capacity(),
        }
    }

    /// A budget over an explicit capacity.
    pub fn new(capacity: ByteSize) -> Self {
        MemoryBudget { capacity }
    }

    /// Total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Per-sequence footprint including the overhead factor.
    pub fn per_sequence(costs: &ResidentCosts) -> ByteSize {
        (costs.kv_per_sequence + costs.hidden_per_sequence) * KV_OVERHEAD_FACTOR
    }

    /// Bytes needed to serve `batch` sequences under `costs`.
    pub fn required(&self, costs: &ResidentCosts, batch: u32) -> ByteSize {
        costs.weights
            + costs.staging
            + WORKSPACE_RESERVE
            + Self::per_sequence(costs) * u64::from(batch)
    }

    /// Whether `batch` sequences fit.
    pub fn fits(&self, costs: &ResidentCosts, batch: u32) -> bool {
        self.required(costs, batch) <= self.capacity
    }

    /// The largest batch that fits; 0 when even the resident costs
    /// overflow.
    pub fn max_batch(&self, costs: &ResidentCosts) -> u32 {
        let resident = costs.weights + costs.staging + WORKSPACE_RESERVE;
        if resident > self.capacity {
            return 0;
        }
        let free = (self.capacity - resident).as_f64();
        let per_seq = Self::per_sequence(costs).as_f64();
        if per_seq <= 0.0 {
            return u32::MAX;
        }
        (free / per_seq).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn budget() -> MemoryBudget {
        MemoryBudget::for_gpu(&GpuSpec::a100_40gb())
    }

    /// OPT-175B per-sequence KV at the paper's serving context
    /// (128 in + 21 out): 96 blocks x 2 x 149 x 12288 x 2 B.
    fn opt175b_kv() -> ByteSize {
        ByteSize::from_bytes(96 * 2 * 149 * 12288 * 2)
    }

    fn opt175b_hidden() -> ByteSize {
        ByteSize::from_bytes(149 * 12288 * 2)
    }

    #[test]
    fn baseline_opt175b_max_batch_is_8() {
        // Baseline uncompressed placement: w_out + small tensors of
        // all 96 blocks on GPU (~29.05 GB), staging for the largest
        // adjacent offloaded pair (FFN + output embedding, ~3.65 GB).
        let costs = ResidentCosts {
            weights: ByteSize::from_bytes(29_048_487_936),
            staging: ByteSize::from_bytes(3_651_477_504),
            kv_per_sequence: opt175b_kv(),
            hidden_per_sequence: opt175b_hidden(),
        };
        assert_eq!(budget().max_batch(&costs), 8);
    }

    #[test]
    fn all_cpu_opt175b_max_batch_is_44() {
        // All-CPU compressed: no resident weights, staging for the
        // largest adjacent compressed pair (~1.03 GB).
        let costs = ResidentCosts {
            weights: ByteSize::ZERO,
            staging: ByteSize::from_bytes(1_027_157_760),
            kv_per_sequence: opt175b_kv(),
            hidden_per_sequence: opt175b_hidden(),
        };
        assert_eq!(budget().max_batch(&costs), 44);
    }

    #[test]
    fn max_batch_is_monotone_in_weights() {
        let mut last = u32::MAX;
        for gb in [0.0, 5.0, 10.0, 20.0, 30.0] {
            let costs = ResidentCosts {
                weights: ByteSize::from_gb(gb),
                staging: ByteSize::from_gb(1.0),
                kv_per_sequence: opt175b_kv(),
                hidden_per_sequence: opt175b_hidden(),
            };
            let b = budget().max_batch(&costs);
            assert!(b <= last);
            last = b;
        }
    }

    #[test]
    fn overflowing_resident_costs_give_zero() {
        let costs = ResidentCosts {
            weights: ByteSize::from_gb(50.0),
            staging: ByteSize::ZERO,
            kv_per_sequence: opt175b_kv(),
            hidden_per_sequence: ByteSize::ZERO,
        };
        assert_eq!(budget().max_batch(&costs), 0);
        assert!(!budget().fits(&costs, 1));
    }

    #[test]
    fn fits_agrees_with_max_batch() {
        let costs = ResidentCosts {
            weights: ByteSize::from_gb(10.0),
            staging: ByteSize::from_gb(1.0),
            kv_per_sequence: opt175b_kv(),
            hidden_per_sequence: opt175b_hidden(),
        };
        let b = budget().max_batch(&costs);
        assert!(budget().fits(&costs, b));
        assert!(!budget().fits(&costs, b + 1));
    }

    #[test]
    fn required_grows_linearly_with_batch() {
        let costs = ResidentCosts {
            weights: ByteSize::ZERO,
            staging: ByteSize::ZERO,
            kv_per_sequence: ByteSize::from_mb(100.0),
            hidden_per_sequence: ByteSize::ZERO,
        };
        let b = budget();
        let r1 = b.required(&costs, 1);
        let r2 = b.required(&costs, 2);
        let delta = r2 - r1;
        assert_eq!(delta, MemoryBudget::per_sequence(&costs));
    }
}
