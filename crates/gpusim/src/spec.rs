//! GPU device specifications.

use crate::kernels::KernelProfile;
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize, ComputeRate};

/// A GPU device model.
///
/// # Examples
///
/// ```
/// use gpusim::GpuSpec;
///
/// let a100 = GpuSpec::a100_40gb();
/// assert_eq!(a100.hbm_bandwidth().as_gb_per_s(), 1555.0);
/// assert_eq!(a100.hbm_capacity().as_gb(), 40.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    name: String,
    hbm_capacity: ByteSize,
    hbm_bandwidth: Bandwidth,
    fp16_tflops: f64,
    kernel_launch: SimDuration,
}

impl GpuSpec {
    /// The paper's accelerator: NVIDIA A100, 40 GB HBM2 at 1555 GB/s
    /// (Table I), 312 TFLOPS FP16 tensor peak.
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100 40GB".to_owned(),
            hbm_capacity: ByteSize::from_gb(40.0),
            hbm_bandwidth: Bandwidth::from_gb_per_s(1555.0),
            fp16_tflops: 312.0,
            kernel_launch: SimDuration::from_micros(12.0),
        }
    }

    /// NVIDIA A100 80 GB (SXM): same compute, doubled HBM at
    /// 2039 GB/s.
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100 80GB".to_owned(),
            hbm_capacity: ByteSize::from_gb(80.0),
            hbm_bandwidth: Bandwidth::from_gb_per_s(2039.0),
            fp16_tflops: 312.0,
            kernel_launch: SimDuration::from_micros(12.0),
        }
    }

    /// NVIDIA H100 80 GB (SXM): HBM3 at 3350 GB/s, ~989 TFLOPS FP16.
    pub fn h100_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA H100 80GB".to_owned(),
            hbm_capacity: ByteSize::from_gb(80.0),
            hbm_bandwidth: Bandwidth::from_gb_per_s(3350.0),
            fp16_tflops: 989.0,
            kernel_launch: SimDuration::from_micros(10.0),
        }
    }

    /// A custom device.
    pub fn new(
        name: impl Into<String>,
        hbm_capacity: ByteSize,
        hbm_bandwidth: Bandwidth,
        fp16: ComputeRate,
        kernel_launch: SimDuration,
    ) -> Self {
        GpuSpec {
            name: name.into(),
            hbm_capacity,
            hbm_bandwidth,
            fp16_tflops: fp16.as_tflops(),
            kernel_launch,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Onboard memory capacity.
    pub fn hbm_capacity(&self) -> ByteSize {
        self.hbm_capacity
    }

    /// Onboard memory bandwidth.
    pub fn hbm_bandwidth(&self) -> Bandwidth {
        self.hbm_bandwidth
    }

    /// Peak FP16 tensor throughput in TFLOPS.
    pub fn fp16_tflops(&self) -> f64 {
        self.fp16_tflops
    }

    /// Fixed launch/driver overhead per kernel.
    pub fn kernel_launch_overhead(&self) -> SimDuration {
        self.kernel_launch
    }

    /// Execution time of one kernel under this device's calibrated
    /// efficiency model (see [`crate::kernels`]).
    pub fn kernel_time(&self, kernel: &KernelProfile) -> SimDuration {
        kernel.time_on(self)
    }

    /// Execution time of a sequence of kernels (one launch each).
    pub fn kernels_time<'a, I>(&self, kernels: I) -> SimDuration
    where
        I: IntoIterator<Item = &'a KernelProfile>,
    {
        kernels.into_iter().map(|k| self.kernel_time(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_table_i() {
        let gpu = GpuSpec::a100_40gb();
        assert!(gpu.name().contains("A100"));
        assert_eq!(gpu.hbm_capacity(), ByteSize::from_gb(40.0));
        assert_eq!(gpu.fp16_tflops(), 312.0);
    }

    #[test]
    fn kernel_sequence_sums() {
        let gpu = GpuSpec::a100_40gb();
        let ks = [KernelProfile::gemv(1e9), KernelProfile::gemv(1e9)];
        let total = gpu.kernels_time(&ks);
        let single = gpu.kernel_time(&ks[0]);
        assert!((total.as_secs() - 2.0 * single.as_secs()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid compute rate")]
    fn zero_flops_rejected() {
        let _ = GpuSpec::new(
            "bad",
            ByteSize::from_gb(1.0),
            Bandwidth::from_gb_per_s(1.0),
            ComputeRate::from_tflops(0.0),
            SimDuration::ZERO,
        );
    }
}
