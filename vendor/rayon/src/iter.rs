//! The parallel iterator surface: indexed map/collect over slices.
//!
//! The execution model is deliberately simple: a parallel chain knows
//! its length and how to compute the item at one index, and
//! [`ParallelIterator::collect`] drives every index through the chain
//! on `current_num_threads()` scoped worker threads pulling indices
//! from a shared atomic counter. Workers buffer `(index, value)`
//! pairs locally and the driver reassembles them in index order, so
//! the collected `Vec` is identical whatever the thread count — the
//! property deterministic reductions downstream rely on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A parallel chain over a fixed index range.
///
/// The `pi_*` methods are the stub's internal driver interface (not
/// part of upstream rayon's API); user code only calls [`map`] and
/// [`collect`].
///
/// [`map`]: ParallelIterator::map
/// [`collect`]: ParallelIterator::collect
pub trait ParallelIterator: Sized + Sync {
    /// The item the chain yields.
    type Item: Send;

    /// Number of items in the chain.
    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    /// Computes the item at `index` (pure; called from any worker).
    #[doc(hidden)]
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Maps each item through `op` in parallel.
    fn map<R, F>(self, op: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, op }
    }

    /// Executes the chain and gathers the results in input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_results(execute(&self))
    }
}

/// Collection types a parallel chain can gather into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in input order.
    fn from_ordered_results(results: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_results(results: Vec<T>) -> Self {
        results
    }
}

/// Borrowing conversion into a parallel iterator
/// (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: Send + 'data;
    /// The chain `par_iter` produces.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a borrowed slice.
#[derive(Debug)]
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;

    fn pi_len(&self) -> usize {
        self.items.len()
    }

    fn pi_get(&self, index: usize) -> &'data T {
        &self.items[index]
    }
}

/// A mapped parallel chain.
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    op: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> R {
        (self.op)(self.base.pi_get(index))
    }
}

/// Drives every index of `chain` across scoped workers, returning the
/// results in index order.
fn execute<P: ParallelIterator>(chain: &P) -> Vec<P::Item> {
    let len = chain.pi_len();
    let workers = crate::current_num_threads().max(1).min(len.max(1));
    if workers <= 1 || len <= 1 {
        return (0..len).map(|i| chain.pi_get(i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, P::Item)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= len {
                        break;
                    }
                    local.push((index, chain.pi_get(index)));
                }
                match gathered.lock() {
                    Ok(mut all) => all.extend(local),
                    Err(poisoned) => poisoned.into_inner().extend(local),
                }
            });
        }
    });
    let mut all = match gathered.into_inner() {
        Ok(all) => all,
        Err(poisoned) => poisoned.into_inner(),
    };
    debug_assert_eq!(all.len(), len);
    all.sort_by_key(|&(index, _)| index);
    all.into_iter().map(|(_, item)| item).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chains_compose() {
        let items = [1u32, 2, 3, 4];
        let out: Vec<String> = items
            .par_iter()
            .map(|x| x * 10)
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(out, vec!["v10", "v20", "v30", "v40"]);
    }

    #[test]
    fn large_input_is_fully_covered() {
        let items: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = items.par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), items.len());
        assert_eq!(out.first(), Some(&1));
        assert_eq!(out.last(), Some(&10_000));
    }
}
