//! Offline stand-in for the `rayon` crate.
//!
//! The helmsim workspace pins its dependencies to in-tree vendor
//! crates so that `cargo build` / `cargo test` work with no registry
//! access. This crate implements exactly the API surface the
//! workspace uses — [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! and `slice.par_iter().map(f).collect::<Vec<_>>()` — on top of
//! `std::thread::scope` with an atomic work counter for dynamic load
//! balancing. Like upstream rayon:
//!
//! * `collect` into a `Vec` preserves input order regardless of which
//!   worker computed which item, so a deterministic serial reduction
//!   over the collected results is thread-count independent;
//! * the default worker count honors the `RAYON_NUM_THREADS`
//!   environment variable, falling back to the machine's available
//!   parallelism;
//! * a panic in any worker propagates to the caller when the scope
//!   joins.
//!
//! It does **not** implement work stealing, splitting heuristics, or
//! the broader `ParallelIterator` combinator zoo.

use std::cell::Cell;

pub mod iter;

/// Everything needed to use the parallel iterator surface:
/// `use rayon::prelude::*;`
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker count installed by the innermost [`ThreadPool::install`]
    /// on this thread; 0 when outside any pool.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The worker count parallel iterators on this thread will use: the
/// installed pool's size inside [`ThreadPool::install`], otherwise
/// `RAYON_NUM_THREADS` when set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    default_num_threads()
}

fn default_num_threads() -> usize {
    if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error building a thread pool. The stub's builder cannot actually
/// fail; the type exists so callers match upstream rayon's fallible
/// signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (auto-detected) worker count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; 0 keeps the default behavior
    /// (`RAYON_NUM_THREADS` or available parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the stub; the `Result` matches upstream rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads > 0 {
            self.num_threads
        } else {
            default_num_threads()
        };
        Ok(ThreadPool { num_threads })
    }
}

/// A scoped worker-count context. The stub spawns fresh scoped
/// threads per parallel call instead of keeping a resident pool;
/// [`ThreadPool::install`] only pins the worker count the iterators
/// inside `op` will use.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previously installed worker count even if `op`
/// unwinds.
struct InstallGuard {
    previous: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.previous));
    }
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's worker count governing every
    /// parallel iterator it executes.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let _guard = InstallGuard {
            previous: INSTALLED_THREADS.with(|c| c.replace(self.num_threads)),
        };
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn pool_reports_requested_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert!(
            ThreadPoolBuilder::new()
                .build()
                .unwrap()
                .current_num_threads()
                .max(1)
                >= 1
        );
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 5);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let items: Vec<u64> = (0..997).collect();
        for threads in [1usize, 2, 7] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let doubled: Vec<u64> = pool.install(|| items.par_iter().map(|x| x * 2).collect());
            assert_eq!(doubled.len(), items.len());
            for (i, v) in doubled.iter().enumerate() {
                assert_eq!(*v, 2 * items[i]);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par: Vec<u64> = pool.install(|| {
                items
                    .par_iter()
                    .map(|x| x.wrapping_mul(2654435761))
                    .collect()
            });
            assert_eq!(par, serial, "thread count {threads}");
        }
    }
}
