//! Offline stand-in for the `rand` crate.
//!
//! The helmsim workspace pins its dependencies to in-tree vendor
//! crates so that `cargo build` / `cargo test` work with no registry
//! access. This crate implements exactly the API surface the
//! workspace uses — `StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], and [`Rng::gen_range`] — on top of xoshiro256**
//! seeded through SplitMix64. It is deterministic and statistically
//! solid for simulation workloads; it makes no cryptographic claims,
//! and it does **not** reproduce upstream `rand`'s exact streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the subset of upstream `SeedableRng` we use).
pub trait SeedableRng: Sized {
    /// Derives a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free bounded integer draw (Lemire's multiply-shift would
/// be faster; modulo bias is < 2^-32 for simulation-sized ranges and
/// a widening multiply keeps it exact enough here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply maps a uniform u64 onto [0, bound) with at
    // most one part in 2^64 of bias.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream's `Rng` extension trait).
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (upstream's `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with a
    /// SplitMix64-expanded seed (upstream uses ChaCha12; we only
    /// promise determinism, not stream compatibility).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints never drawn");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 1e5;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
