//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface helmsim's benches use (`Criterion`,
//! benchmark groups, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros) backed by a
//! plain wall-clock timer: each benchmark is warmed up once and then
//! timed over a fixed iteration budget, reporting mean time per
//! iteration (and bytes/s where a throughput is declared). No
//! statistics, plots, or baselines — this exists so `cargo bench`
//! runs offline, not to replace criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Label for one parameterized benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id carrying a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// An id distinguished by its parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{func}/{}", self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Abstract elements handled per iteration.
    Elements(u64),
}

/// Runs the measured closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = routine();
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_STUB_ITERS trades precision for runtime; the
        // default keeps full-pipeline benches tolerable in debug.
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        Criterion { iters }
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
            format!("  {:>10.3} MB/s", b as f64 / per_iter / 1e6)
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

impl Criterion {
    /// Benchmarks `routine` under `name`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: R) {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        report(name, b.iters, b.elapsed, None);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the stub's iteration budget is
    /// fixed by `CRITERION_STUB_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: R,
    ) {
        let mut b = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let label = format!("{}/{id}", self.name);
        report(&label, b.iters, b.elapsed, self.throughput);
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) {
        let mut b = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b, input);
        let label = format!("{}/{id}", self.name);
        report(&label, b.iters, b.elapsed, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a set of groups. Ignores harness arguments
/// (`--bench`, filters) the way `cargo bench`/`cargo test` pass them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion { iters: 5 };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 5 timed.
        assert_eq!(runs, 6);
    }

    #[test]
    fn groups_run_with_inputs_and_throughput() {
        let mut c = Criterion { iters: 2 };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(10);
        let data = vec![1u8; 16];
        let mut total = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(16), &data, |b, d| {
            b.iter(|| total += d.len())
        });
        group.finish();
        assert_eq!(total, 3 * 16);
    }

    #[test]
    fn ids_render_both_forms() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
