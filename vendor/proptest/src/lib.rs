//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the helmsim test suite uses:
//! range and tuple strategies, `prop_map`, `any::<T>()`,
//! `prop::collection::vec`, the `proptest!` macro, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Sampling is
//! deterministic — each test's RNG stream is seeded from the test
//! name — so failures reproduce exactly. There is **no shrinking**:
//! a failing case reports its case index and panics with the original
//! values in the assertion message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, Standard};
    use std::ops::{Range, RangeInclusive};

    /// A source of values for one generated test argument.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: SampleRange<Output = T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Clone,
        RangeInclusive<T>: SampleRange<Output = T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Uniform over `T`'s whole domain (`any::<bool>()` etc.).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// A strategy drawing uniformly from `T`'s standard distribution.
    pub fn any<T: Standard>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Always produces a clone of `value`.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategy factories namespaced like upstream's `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from
        /// `size` (half-open, like upstream's `SizeRange`).
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// The [`vec`] strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test execution settings.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    /// Upstream's name for [`Config`].
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Drives one property test: owns the deterministic RNG stream.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner whose stream is derived from the test name, so
        /// each property sees decorrelated but reproducible inputs.
        pub fn new(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that samples `config.cases` inputs and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
            for __proptest_case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), runner.rng());
                )+
                let case: u32 = __proptest_case;
                let _ = case;
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that reports the failing generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// `assert_eq!` that reports the failing generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 1u32..=16,
            (a, b) in (0.0f64..1.0, 10usize..20).prop_map(|(a, b)| (a, b)),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..=16).contains(&x));
            prop_assert!((0.0..1.0).contains(&a), "a = {a}");
            prop_assert!((10..20).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0i32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut r1 = crate::test_runner::TestRunner::new("stable-name");
        let mut r2 = crate::test_runner::TestRunner::new("stable-name");
        for _ in 0..16 {
            assert_eq!(strat.sample(r1.rng()), strat.sample(r2.rng()));
        }
    }
}
